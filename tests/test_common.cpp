// Unit tests for the common substrate: RNG determinism, statistics,
// CSV/table output and string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/function_ref.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

using namespace hpac;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexIsUnbiasedEnough) {
  Xoshiro256 rng(5);
  std::array<int, 7> counts{};
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, draws / 7.0, draws / 7.0 * 0.1);
}

TEST(Rng, NormalHasExpectedMoments) {
  Xoshiro256 rng(6);
  stats::RunningStats acc;
  for (int i = 0; i < 100000; ++i) acc.push(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), std::sqrt(1.25));
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(stats::mean({}), 0.0); }

TEST(Stats, RsdMatchesPaperDefinition) {
  // RSD = sigma / mu (population); constant data has RSD 0.
  const std::vector<double> constant{5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::rsd(constant), 0.0);
  const std::vector<double> xs{9, 10, 11};
  EXPECT_NEAR(stats::rsd(xs), std::sqrt(2.0 / 3.0) / 10.0, 1e-12);
}

TEST(Stats, RsdOfZeroMeanIsInfinite) {
  const std::vector<double> xs{-1, 1};
  EXPECT_TRUE(std::isinf(stats::rsd(xs)));
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(stats::rsd(zeros), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::geomean(xs), 2.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(stats::geomean(xs), Error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 25);
}

TEST(Stats, BoxStatsOrdering) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  const auto box = stats::box_stats(xs);
  EXPECT_LE(box.min, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.max);
  EXPECT_DOUBLE_EQ(box.median, 50.5);
}

TEST(Stats, PerfectLinearRegression) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const auto r = stats::linear_regression(x, y);
  EXPECT_NEAR(r.slope, 2.0, 1e-12);
  EXPECT_NEAR(r.intercept, 1.0, 1e-12);
  EXPECT_NEAR(r.r2, 1.0, 1e-12);
}

TEST(Stats, NoisyRegressionHasR2BelowOne) {
  std::vector<double> x, y;
  Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 10.0 * rng.normal());
  }
  const auto r = stats::linear_regression(x, y);
  EXPECT_GT(r.r2, 0.9);
  EXPECT_LT(r.r2, 1.0);
}

TEST(Stats, MapeMatchesPaperEquationOne) {
  const std::vector<double> acc{10, 20};
  const std::vector<double> apx{11, 18};
  // (|10-11|/10 + |20-18|/20)/2 = (0.1 + 0.1)/2 = 0.1 -> 10%
  EXPECT_NEAR(stats::mape_percent(acc, apx), 10.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroReferences) {
  const std::vector<double> acc{0, 10};
  const std::vector<double> apx{5, 10};
  EXPECT_DOUBLE_EQ(stats::mape_percent(acc, apx), 0.0);
}

TEST(Stats, McrMatchesPaperEquationTwo) {
  const std::vector<int> acc{1, 2, 3, 4};
  const std::vector<int> apx{1, 2, 9, 9};
  EXPECT_DOUBLE_EQ(stats::mcr_percent(acc, apx), 50.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Xoshiro256 rng(9);
  std::vector<double> xs;
  stats::RunningStats acc;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0, 100);
    xs.push_back(v);
    acc.push(v);
  }
  EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-9);
  EXPECT_NEAR(acc.variance(), stats::variance(xs), 1e-6);
}

TEST(Csv, RoundTripAndAccessors) {
  CsvTable t({"name", "value"});
  t.add_row({std::string("a"), 1.5});
  t.add_row({std::string("b"), static_cast<long long>(7)});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number_at(0, "value"), 1.5);
  EXPECT_DOUBLE_EQ(t.number_at(1, 1), 7.0);
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "a");
}

TEST(Csv, RejectsWrongRowWidth) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvTable t({"text"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.write(os);
  EXPECT_NE(os.str().find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Csv, UnknownColumnThrows) {
  CsvTable t({"a"});
  EXPECT_THROW(t.column_index("missing"), Error);
}

namespace {

std::string rendered(const CsvTable& t) {
  std::ostringstream os;
  t.write(os);
  return os.str();
}

}  // namespace

TEST(Csv, LoadRoundTripsSpecialCharacters) {
  CsvTable t({"text", "more"});
  t.add_row({std::string("comma, inside"), std::string("plain")});
  t.add_row({std::string("quote \"q\" here"), std::string("line\nbreak")});
  t.add_row({std::string("\"leading"), std::string("mix,\"of\"\nall three")});
  const std::string bytes = rendered(t);

  std::istringstream is(bytes);
  const CsvTable loaded = CsvTable::load(is);
  ASSERT_EQ(loaded.row_count(), 3u);
  EXPECT_EQ(loaded.text_at(0, "text"), "comma, inside");
  EXPECT_EQ(loaded.text_at(1, "text"), "quote \"q\" here");
  EXPECT_EQ(loaded.text_at(1, "more"), "line\nbreak");
  EXPECT_EQ(loaded.text_at(2, "text"), "\"leading");
  EXPECT_EQ(loaded.text_at(2, "more"), "mix,\"of\"\nall three");
  EXPECT_EQ(rendered(loaded), bytes);
}

TEST(Csv, NumericFormattingIsStableAcrossRepeatedRoundTrips) {
  CsvTable t({"d", "i", "s"});
  t.add_row({1.0 / 3.0, static_cast<long long>(-7), std::string("x")});
  t.add_row({1.23456789012e-17, static_cast<long long>(1LL << 60), std::string("42x")});
  t.add_row({-0.000123456789, static_cast<long long>(0), std::string("")});
  t.add_row({2.0, static_cast<long long>(9), std::string("1e5")});
  const std::string first = rendered(t);

  std::istringstream is1(first);
  const std::string second = rendered(CsvTable::load(is1));
  std::istringstream is2(second);
  const std::string third = rendered(CsvTable::load(is2));
  EXPECT_EQ(second, first);
  EXPECT_EQ(third, first);
}

TEST(Csv, LoadRestoresNumericTypes) {
  CsvTable t({"d", "i"});
  t.add_row({1.5, static_cast<long long>(7)});
  std::istringstream is(rendered(t));
  const CsvTable loaded = CsvTable::load(is);
  EXPECT_DOUBLE_EQ(loaded.number_at(0, "d"), 1.5);
  EXPECT_DOUBLE_EQ(loaded.number_at(0, "i"), 7.0);
  EXPECT_TRUE(std::holds_alternative<double>(loaded.at(0, 0)));
  EXPECT_TRUE(std::holds_alternative<long long>(loaded.at(0, 1)));
}

TEST(Csv, LoadKeepsNonCanonicalNumbersAsText) {
  // "007" parses as 7 but re-formats differently; it must stay a string so
  // the bytes survive.
  std::istringstream is("col\n007\n");
  const CsvTable loaded = CsvTable::load(is);
  EXPECT_TRUE(std::holds_alternative<std::string>(loaded.at(0, 0)));
  EXPECT_EQ(rendered(loaded), "col\n007\n");
}

TEST(Csv, RandomizedRoundTripIsByteIdentical) {
  // Property test: rows mixing random nasty strings and random numerics
  // survive write -> load -> write untouched.
  Xoshiro256 rng(2026);
  const std::string alphabet = "ab,\"\n x0.-";
  CsvTable t({"s", "d", "i"});
  for (int row = 0; row < 200; ++row) {
    std::string s;
    const std::size_t len = rng.uniform_index(12);
    for (std::size_t i = 0; i < len; ++i) s.push_back(alphabet[rng.uniform_index(alphabet.size())]);
    t.add_row({s, rng.uniform(-1e6, 1e6) * std::pow(10.0, rng.uniform(-12, 12)),
               static_cast<long long>(rng.next())});
  }
  const std::string bytes = rendered(t);
  std::istringstream is(bytes);
  EXPECT_EQ(rendered(CsvTable::load(is)), bytes);
}

TEST(Csv, ReaderHandlesCrlfAndMissingFinalNewline) {
  std::istringstream is("a,b\r\n1,2\r\n3,4");
  CsvReader reader(is);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ((*header)[0], "a");
  EXPECT_EQ((*header)[1], "b");
  const auto row1 = reader.next_row();
  ASSERT_TRUE(row1.has_value());
  EXPECT_EQ((*row1)[1], "2");
  const auto row2 = reader.next_row();
  ASSERT_TRUE(row2.has_value());
  EXPECT_EQ((*row2)[1], "4");
  EXPECT_FALSE(reader.next_row().has_value());
}

TEST(Csv, ReaderSpansQuotedNewlines) {
  std::istringstream is("\"one\ncell\",two\n");
  CsvReader reader(is);
  const auto row = reader.next_row();
  ASSERT_TRUE(row.has_value());
  ASSERT_EQ(row->size(), 2u);
  EXPECT_EQ((*row)[0], "one\ncell");
  EXPECT_EQ((*row)[1], "two");
}

TEST(Csv, LoadRejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(CsvTable::load(empty), Error);
  std::istringstream ragged("a,b\n1\n");
  EXPECT_THROW(CsvTable::load(ragged), Error);
  std::istringstream unterminated("a\n\"open\n");
  EXPECT_THROW(CsvTable::load(unterminated), Error);
}

TEST(Csv, LoadFileMissingPathThrows) {
  EXPECT_THROW(CsvTable::load_file("/nonexistent/dir/f.csv"), Error);
}

TEST(Csv, DropTornTailRecoversJournalsKilledMidRow) {
  // The signature of an append-mode journal whose writer died mid-write:
  // a final record with too few cells ...
  std::istringstream torn_cells("a,b\n1,2\n3\n");
  const CsvTable recovered = CsvTable::load(torn_cells, /*drop_torn_tail=*/true);
  EXPECT_EQ(recovered.row_count(), 1u);
  // ... or one ending inside a quoted cell.
  std::istringstream torn_quote("a,b\n1,2\n3,\"unterm");
  EXPECT_EQ(CsvTable::load(torn_quote, true).row_count(), 1u);
  // Without the flag both stay hard errors ...
  std::istringstream strict("a,b\n1,2\n3\n");
  EXPECT_THROW(CsvTable::load(strict), Error);
  // ... and a ragged row in the *middle* is corruption either way.
  std::istringstream mid("a,b\n1\n3,4\n");
  EXPECT_THROW(CsvTable::load(mid, true), Error);
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(strings::trim("  hi \t\n"), "hi");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = strings::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, ParseIntStrict) {
  long long v = 0;
  EXPECT_TRUE(strings::parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(strings::parse_int("42x", v));
  EXPECT_FALSE(strings::parse_int("", v));
}

TEST(Strings, ParseDoubleAcceptsFloatSuffix) {
  double v = 0;
  EXPECT_TRUE(strings::parse_double("0.5f", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(strings::parse_double("1e-3", v));
  EXPECT_FALSE(strings::parse_double("abc", v));
}

TEST(Strings, FormatBehavesLikePrintf) {
  EXPECT_EQ(strings::format("%d-%s", 7, "x"), "7-x");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(257, 0);
  // Distinct indices write distinct slots, so no synchronization needed.
  pool.parallel_for(hits.size(), [&](std::size_t, std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, IsReusableAcrossJobs) {
  ThreadPool pool(2);
  int total = 0;
  for (int job = 0; job < 5; ++job) {
    std::vector<int> hits(64, 0);
    pool.parallel_for(hits.size(), [&](std::size_t, std::size_t i) { hits[i] = 1; });
    total += std::accumulate(hits.begin(), hits.end(), 0);
  }
  EXPECT_EQ(total, 5 * 64);
}

TEST(ThreadPool, WorkerIdsAreStableAndInRange) {
  ThreadPool pool(3);
  std::vector<int> seen(64, -1);
  pool.parallel_for(seen.size(), [&](std::size_t worker, std::size_t i) {
    seen[i] = static_cast<int>(worker);
  });
  for (int worker : seen) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(8, 0);
  pool.parallel_for(hits.size(), [&](std::size_t worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    hits[i] = 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t, std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after a failed job.
  std::vector<int> hits(4, 0);
  pool.parallel_for(hits.size(), [&](std::size_t, std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}

TEST(ThreadPool, StressRepeatedThrowingJobsDoNotDeadlock) {
  // A task throwing mid-sweep must leave the pool consistent: the caller
  // sees the exception (nothing is dropped silently) and the next job runs
  // normally. Loop enough times to shake out lost-wakeup interleavings.
  ThreadPool pool(8);
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::atomic<int> executed{0};
    try {
      pool.parallel_for(256, [&](std::size_t, std::size_t i) {
        if (i % 7 == 0) throw std::runtime_error("boom");
        executed.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error&) {
    }
    // Unstarted indices were abandoned, and the caller was told via the
    // exception; the abandoned count is visible as executed < total.
    EXPECT_LT(executed.load(), 256);
    std::atomic<int> clean{0};
    pool.parallel_for(64, [&](std::size_t, std::size_t) {
      clean.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(clean.load(), 64);
  }
}

TEST(ThreadPool, StressConcurrentThrowsKeepFirstException) {
  ThreadPool pool(8);
  for (int iteration = 0; iteration < 25; ++iteration) {
    EXPECT_THROW(pool.parallel_for(128,
                                   [&](std::size_t, std::size_t) {
                                     throw Error("every task throws");
                                   }),
                 Error);
  }
}

TEST(ThreadPool, ShutdownUnderLoadDoesNotHang) {
  // Construct, run a job whose tasks are still draining as parallel_for
  // returns, and destroy immediately — repeatedly. A lost stop notification
  // or a worker stuck on the generation check would deadlock this loop.
  for (int iteration = 0; iteration < 40; ++iteration) {
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    pool.parallel_for(64, [&](std::size_t, std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(executed.load(), 64);
  }
}

TEST(ThreadPool, ShutdownAfterFailedJobDoesNotHang) {
  for (int iteration = 0; iteration < 40; ++iteration) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(32,
                                   [](std::size_t, std::size_t i) {
                                     if (i == 0) throw std::runtime_error("early");
                                   }),
                 std::runtime_error);
  }
}

TEST(ThreadPool, RecommendedThreadsClamps) {
  EXPECT_EQ(ThreadPool::recommended_threads(8, 3), 3u);
  EXPECT_EQ(ThreadPool::recommended_threads(2, 100), 2u);
  EXPECT_EQ(ThreadPool::recommended_threads(5, 0), 1u);
  EXPECT_GE(ThreadPool::recommended_threads(0, 100), 1u);
}

// --- FunctionRef ----------------------------------------------------------

TEST(FunctionRef, BindsLambdasAndForwardsArguments) {
  int calls = 0;
  auto add = [&calls](int a, int b) {
    ++calls;
    return a + b;
  };
  FunctionRef<int(int, int)> ref = add;
  EXPECT_EQ(ref(2, 3), 5);
  EXPECT_EQ(ref(10, -4), 6);
  EXPECT_EQ(calls, 2);
}

TEST(FunctionRef, DefaultConstructedIsEmpty) {
  FunctionRef<void()> ref;
  EXPECT_FALSE(static_cast<bool>(ref));
}

TEST(FunctionRef, ObservesMutationsOfTheReferencedCallable) {
  // Non-owning: the ref sees the callable's *current* state, it holds no
  // copy.
  int factor = 2;
  auto scale = [&factor](int v) { return v * factor; };
  FunctionRef<int(int)> ref = scale;
  EXPECT_EQ(ref(21), 42);
  factor = 3;
  EXPECT_EQ(ref(21), 63);
}

TEST(FunctionRef, BindsStdFunction) {
  std::function<double(double)> doubler = [](double v) { return 2.0 * v; };
  FunctionRef<double(double)> ref = doubler;
  EXPECT_DOUBLE_EQ(ref(1.5), 3.0);
  doubler = [](double v) { return 10.0 * v; };  // ref tracks the object
  EXPECT_DOUBLE_EQ(ref(1.5), 15.0);
}

TEST(FunctionRef, RebindsByAssignment) {
  auto one = [](int) { return 1; };
  auto two = [](int) { return 2; };
  FunctionRef<int(int)> ref = one;
  EXPECT_EQ(ref(0), 1);
  ref = two;
  EXPECT_EQ(ref(0), 2);
}

TEST(ThreadPool, ReportsWorkerThreads) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(2);
  std::atomic<int> on_worker{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) {
    if (ThreadPool::on_worker_thread()) on_worker.fetch_add(1);
  });
  EXPECT_EQ(on_worker.load(), 8);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, InlinePoolDoesNotClaimWorkerStatus) {
  // A zero-size pool runs bodies on the caller; that thread is not a pool
  // worker, so nested engines may still fan out.
  ThreadPool pool(0);
  bool saw_worker = false;
  pool.parallel_for(3, [&](std::size_t, std::size_t) {
    saw_worker = saw_worker || ThreadPool::on_worker_thread();
  });
  EXPECT_FALSE(saw_worker);
}
