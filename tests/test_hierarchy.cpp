// Tests for the hierarchical (majority-rules) decision machinery.

#include <gtest/gtest.h>

#include "approx/hierarchy.hpp"

using namespace hpac;
using namespace hpac::approx;
using sim::full_mask;

TEST(Hierarchy, StrictMajorityRequired) {
  // 16 of 32: not a strict majority.
  EXPECT_FALSE(warp_majority(0x0000FFFFull, full_mask(32)));
  // 17 of 32: majority.
  EXPECT_TRUE(warp_majority(0x0001FFFFull, full_mask(32)));
}

TEST(Hierarchy, OnlyActiveLanesCount) {
  // 4 wishes among 6 active lanes: majority even though the warp has 32.
  const sim::LaneMask active = 0b111111;
  const sim::LaneMask wishes = 0b001111;
  EXPECT_TRUE(warp_majority(wishes, active));
  EXPECT_FALSE(warp_majority(0b000011, active));
}

TEST(Hierarchy, WishesOutsideActiveAreIgnored) {
  const sim::LaneMask active = 0b0011;
  const sim::LaneMask wishes = 0b1100;  // only inactive lanes wish
  EXPECT_FALSE(warp_majority(wishes, active));
}

TEST(Hierarchy, EmptyWarpNeverApproximates) {
  EXPECT_FALSE(warp_majority(0, 0));
}

TEST(Hierarchy, SingleLaneWarp) {
  EXPECT_TRUE(warp_majority(1, 1));
  EXPECT_FALSE(warp_majority(0, 1));
}

TEST(Hierarchy, BlockTallyAggregatesWarps) {
  BlockTally tally;
  tally.add(0x0000FFFFull, full_mask(32));  // 16/32
  tally.add(full_mask(32), full_mask(32));  // 32/32
  EXPECT_EQ(tally.wish_count(), 48);
  EXPECT_EQ(tally.active_count(), 64);
  EXPECT_TRUE(tally.majority());  // 48 of 64
}

TEST(Hierarchy, BlockTallyMajorityIsStrict) {
  BlockTally tally;
  tally.add(0x0000FFFFull, full_mask(32));
  tally.add(0x0000FFFFull, full_mask(32));
  EXPECT_EQ(tally.wish_count(), 32);
  EXPECT_EQ(tally.active_count(), 64);
  EXPECT_FALSE(tally.majority());  // exactly half is not a majority
  tally.add(0b1, 0b1);
  EXPECT_TRUE(tally.majority());  // 33 of 65
}

TEST(Hierarchy, BlockTallyReset) {
  BlockTally tally;
  tally.add(full_mask(32), full_mask(32));
  tally.reset();
  EXPECT_EQ(tally.wish_count(), 0);
  EXPECT_EQ(tally.active_count(), 0);
  EXPECT_FALSE(tally.majority());
}

TEST(Hierarchy, SixtyFourLaneWavefront) {
  // AMD wavefronts: 64 lanes.
  EXPECT_FALSE(warp_majority(0xFFFFFFFFull, full_mask(64)));          // 32/64
  EXPECT_TRUE(warp_majority(0x1FFFFFFFFull, full_mask(64)));          // 33/64
}
