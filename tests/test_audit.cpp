// Tests for the commit-conflict auditor (hpac::approx::audit): the layer
// that validates `independent_items` declarations at runtime instead of
// trusting them. Coverage:
//   * every registered app passes audit_mode=enforce (with differential
//     re-runs) across TAF / iACT / perforation on both device presets;
//   * the deliberately mislabeled fixture is detected in report and
//     enforce modes, serially and under team sharding (the sharded cases
//     run under ThreadSanitizer in CI — the fixture commits through
//     relaxed atomics so the only races left are semantic ones);
//   * the differential re-run catches hidden read-side dependence that
//     address tagging cannot see, and restores application state so
//     auditing never changes results;
//   * report determinism, missing-extents handling, off-mode inertness.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "approx/audit.hpp"
#include "approx/region.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "harness/campaign.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"
#include "mislabeled_fixture.hpp"
#include "pragma/parser.hpp"
#include "sim/device.hpp"
#include "sim/launch.hpp"

namespace {

using namespace hpac;
using approx::audit::AuditMode;
using approx::audit::ConflictReport;
using testing_fixture = hpac::testing::MislabeledBenchmark;
using hpac::testing::Flaw;

class TuningGuard {
 public:
  explicit TuningGuard(const approx::ExecTuning& tuning)
      : previous_(approx::RegionExecutor::default_tuning()) {
    approx::RegionExecutor::set_default_tuning(tuning);
  }
  ~TuningGuard() { approx::RegionExecutor::set_default_tuning(previous_); }

 private:
  approx::ExecTuning previous_;
};

approx::ExecTuning serial_audit(AuditMode mode, bool differential) {
  approx::ExecTuning tuning;
  tuning.max_threads = 1;
  tuning.audit_mode = mode;
  tuning.audit_differential = differential;
  return tuning;
}

approx::ExecTuning sharded_audit(AuditMode mode, bool differential) {
  approx::ExecTuning tuning;
  tuning.max_threads = 4;
  tuning.min_teams = 1;
  tuning.min_items = 0;
  tuning.min_teams_per_shard = 1;
  tuning.audit_mode = mode;
  tuning.audit_differential = differential;
  return tuning;
}

harness::RunOutput run_fixture(Flaw flaw, const approx::ExecTuning& tuning) {
  TuningGuard guard(tuning);
  testing_fixture bench(flaw);
  return bench.run(pragma::ApproxSpec{}, bench.default_items_per_thread(), sim::v100());
}

bool has_kind(const std::vector<ConflictReport>& conflicts, ConflictReport::Kind kind) {
  for (const auto& c : conflicts) {
    if (c.kind == kind) return true;
  }
  return false;
}

TEST(AuditMode_, NamesRoundTrip) {
  for (const AuditMode mode : {AuditMode::kOff, AuditMode::kReport, AuditMode::kEnforce}) {
    const auto parsed = approx::audit::audit_mode_from_string(approx::audit::to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(approx::audit::audit_mode_from_string("verify").has_value());
}

TEST(Audit, OffModeTrustsTheDeclaration) {
  const harness::RunOutput output =
      run_fixture(Flaw::kSharedCell, serial_audit(AuditMode::kOff, false));
  EXPECT_TRUE(output.stats.conflicts.empty());
}

TEST(Audit, HonestFixturePassesEnforceWithDifferential) {
  const harness::RunOutput output =
      run_fixture(Flaw::kNone, serial_audit(AuditMode::kEnforce, true));
  EXPECT_TRUE(output.stats.conflicts.empty());
}

TEST(Audit, SharedCellReportedSerially) {
  const harness::RunOutput output =
      run_fixture(Flaw::kSharedCell, serial_audit(AuditMode::kReport, false));
  ASSERT_FALSE(output.stats.conflicts.empty());
  const ConflictReport& first = output.stats.conflicts.front();
  EXPECT_EQ(first.kind, ConflictReport::Kind::kWriteWrite);
  EXPECT_EQ(first.binding, "fixture.mislabeled");
  // Reports come out in address order: the lowest shared cell belongs to
  // items 0 and 1, and offsets are relative so the range is stable.
  EXPECT_EQ(first.item_a, 0u);
  EXPECT_EQ(first.item_b, 1u);
  EXPECT_EQ(first.begin, 0u);
  EXPECT_EQ(first.end, sizeof(double));
  EXPECT_NE(first.to_string().find("write/write overlap"), std::string::npos);
}

TEST(Audit, SharedCellEnforceThrowsConfigError) {
  TuningGuard guard(serial_audit(AuditMode::kEnforce, false));
  testing_fixture bench(Flaw::kSharedCell);
  try {
    bench.run(pragma::ApproxSpec{}, bench.default_items_per_thread(), sim::v100());
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("commit-conflict"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("fixture.mislabeled"), std::string::npos);
  }
}

TEST(Audit, ReportsAreDeterministicAcrossRepeats) {
  const auto once = [] {
    std::vector<std::string> texts;
    for (const auto& c :
         run_fixture(Flaw::kSharedCell, serial_audit(AuditMode::kReport, false))
             .stats.conflicts) {
      texts.push_back(c.to_string());
    }
    return texts;
  };
  const std::vector<std::string> a = once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, once());
}

TEST(Audit, DeclaredReadNeighborCaughtByAddressTagging) {
  // The read-side dependence is declared via read_extents, so the static
  // read/write sweep finds it — no differential re-run needed.
  const harness::RunOutput output =
      run_fixture(Flaw::kDeclaredReadNeighbor, serial_audit(AuditMode::kReport, false));
  ASSERT_FALSE(output.stats.conflicts.empty());
  EXPECT_TRUE(has_kind(output.stats.conflicts, ConflictReport::Kind::kReadWrite));
}

TEST(Audit, HiddenReadNeighborInvisibleToAddressTaggingAlone) {
  const harness::RunOutput output =
      run_fixture(Flaw::kHiddenReadNeighbor, serial_audit(AuditMode::kReport, false));
  EXPECT_TRUE(output.stats.conflicts.empty());
}

TEST(Audit, HiddenReadNeighborCaughtByDifferential) {
  const harness::RunOutput output =
      run_fixture(Flaw::kHiddenReadNeighbor, serial_audit(AuditMode::kReport, true));
  ASSERT_FALSE(output.stats.conflicts.empty());
  EXPECT_TRUE(has_kind(output.stats.conflicts, ConflictReport::Kind::kDifferential));
}

TEST(Audit, DifferentialRestoresApplicationState) {
  // Auditing must never change what the application computes: committed
  // bytes after an audited run (including the differential re-execution
  // and its restores) equal the un-audited run's bytes exactly.
  const harness::RunOutput plain =
      run_fixture(Flaw::kHiddenReadNeighbor, serial_audit(AuditMode::kOff, false));
  const harness::RunOutput audited =
      run_fixture(Flaw::kHiddenReadNeighbor, serial_audit(AuditMode::kReport, true));
  EXPECT_EQ(plain.qoi, audited.qoi);
}

TEST(Audit, MissingExtentsEnforceThrows) {
  TuningGuard guard(serial_audit(AuditMode::kEnforce, false));
  testing_fixture bench(Flaw::kUndeclaredExtents);
  EXPECT_THROW(bench.run(pragma::ApproxSpec{}, bench.default_items_per_thread(), sim::v100()),
               ConfigError);
}

TEST(Audit, MissingExtentsReportFlags) {
  const harness::RunOutput output =
      run_fixture(Flaw::kUndeclaredExtents, serial_audit(AuditMode::kReport, false));
  ASSERT_EQ(output.stats.conflicts.size(), 1u);
  EXPECT_EQ(output.stats.conflicts.front().kind, ConflictReport::Kind::kMissingExtents);
}

// --- team-sharded detection (runs under TSan in CI) -------------------------

TEST(AuditSharded, SharedCellReportedUnderTeamSharding) {
  const harness::RunOutput output =
      run_fixture(Flaw::kSharedCell, sharded_audit(AuditMode::kReport, false));
  EXPECT_GT(output.stats.host_shards, 1u);
  ASSERT_FALSE(output.stats.conflicts.empty());
  EXPECT_TRUE(has_kind(output.stats.conflicts, ConflictReport::Kind::kWriteWrite));
  // The folded interval multiset is decomposition-independent, so the
  // sharded findings match the serial ones exactly.
  const harness::RunOutput serial =
      run_fixture(Flaw::kSharedCell, serial_audit(AuditMode::kReport, false));
  ASSERT_EQ(output.stats.conflicts.size(), serial.stats.conflicts.size());
  for (std::size_t i = 0; i < serial.stats.conflicts.size(); ++i) {
    EXPECT_EQ(output.stats.conflicts[i].to_string(), serial.stats.conflicts[i].to_string());
  }
}

TEST(AuditSharded, SharedCellEnforceThrowsUnderTeamSharding) {
  TuningGuard guard(sharded_audit(AuditMode::kEnforce, false));
  testing_fixture bench(Flaw::kSharedCell);
  EXPECT_THROW(bench.run(pragma::ApproxSpec{}, bench.default_items_per_thread(), sim::v100()),
               ConfigError);
}

TEST(AuditSharded, HonestFixturePassesShardedEnforceWithDifferential) {
  const harness::RunOutput output =
      run_fixture(Flaw::kNone, sharded_audit(AuditMode::kEnforce, true));
  EXPECT_TRUE(output.stats.conflicts.empty());
}

// --- harness integration -----------------------------------------------------

TEST(AuditHarness, ExplorerAnnotatesReportModeRecords) {
  TuningGuard guard(serial_audit(AuditMode::kReport, false));
  testing_fixture bench(Flaw::kSharedCell);
  harness::Explorer explorer(bench, sim::v100());
  const harness::RunRecord record = explorer.run_config(pragma::parse_approx("perfo(small:2)"),
                                                        bench.default_items_per_thread());
  EXPECT_TRUE(record.feasible);
  EXPECT_NE(record.note.find("commit-conflict"), std::string::npos);
}

TEST(AuditHarness, ExplorerEnforceFailsFastAtTheBaseline) {
  // The accurate baseline run is audited too, and its ConfigError is not
  // swallowed into a record: a binding whose independence claim is false
  // invalidates the whole exploration, not one configuration.
  TuningGuard guard(serial_audit(AuditMode::kEnforce, false));
  testing_fixture bench(Flaw::kSharedCell);
  harness::Explorer explorer(bench, sim::v100());
  EXPECT_THROW(explorer.baseline(), ConfigError);
}

TEST(AuditHarness, ExplorerMarksEnforceModeRecordsInfeasible) {
  testing_fixture bench(Flaw::kSharedCell);
  harness::Explorer explorer(bench, sim::v100());
  {
    // Baseline under report mode (observes, does not veto) ...
    TuningGuard report(serial_audit(AuditMode::kReport, false));
    explorer.baseline();
  }
  // ... then the audited configuration under enforce: the ConfigError is
  // caught per-record, exactly like any other infeasible configuration.
  TuningGuard guard(serial_audit(AuditMode::kEnforce, false));
  const harness::RunRecord record = explorer.run_config(pragma::parse_approx("perfo(small:2)"),
                                                        bench.default_items_per_thread());
  EXPECT_FALSE(record.feasible);
  EXPECT_NE(record.note.find("commit-conflict"), std::string::npos);
}

TEST(AuditHarness, CampaignCountsCleanEnforceRunAsZeroFlagged) {
  TuningGuard guard(serial_audit(AuditMode::kEnforce, true));
  harness::CampaignPlan plan;
  plan.benchmarks = {"blackscholes"};
  plan.devices = {"v100"};
  plan.items_per_thread = {8};
  plan.num_threads = 1;
  plan.specs_for = [](const sim::DeviceConfig&) {
    return std::vector<pragma::ApproxSpec>{pragma::parse_approx("perfo(small:2)")};
  };
  const harness::CampaignResult result = harness::Campaign(plan).run();
  EXPECT_EQ(result.evaluated, 1u);
  EXPECT_EQ(result.feasible, 1u);
  EXPECT_EQ(result.audit_flagged, 0u);
}

// --- the seven registered apps audit clean -----------------------------------

TEST(AuditApps, AllRegisteredAppsPassEnforceAcrossTechniquesAndDevices) {
  TuningGuard guard(serial_audit(AuditMode::kEnforce, true));
  const std::vector<std::string> clauses = {
      "memo(out:3:4:0.3) level(thread)",   // TAF
      "memo(in:8:0.5) level(thread) in(x) out(y)",  // iACT
      "perfo(small:2)",                    // perforation
  };
  for (const auto& name : apps::benchmark_names()) {
    for (const char* device : {"v100", "mi250x"}) {
      auto app = apps::make_benchmark(name);
      harness::Explorer explorer(*app, sim::device_by_name(device));
      for (const auto& clause : clauses) {
        const harness::RunRecord record =
            explorer.run_config(pragma::parse_approx(clause), 8);
        // Some (app, technique) pairs are legitimately infeasible (iACT
        // without uniform inputs); what must never appear is an audit
        // finding — every registered app's declarations hold up.
        EXPECT_EQ(record.note.find("commit-conflict"), std::string::npos)
            << name << " on " << device << " '" << clause << "': " << record.note;
      }
    }
  }
}

// --- extent-image memoization (audit::ExtentImageCache) ----------------------

/// A minimal honest region whose commit extents the cache can model:
/// item i writes one double at `target[index_of(i)]`.
struct CacheRegion {
  std::uint64_t n = 256;
  std::vector<double> out;
  std::vector<double> alt;  ///< second buffer for the ping-pong case

  /// `index_of` maps item -> element of the committed buffer (identity by
  /// default) and must stay a permutation: the regions here are honest,
  /// the cache is what is under test. `flip()` swaps the committed buffer
  /// between launches (ping-pong).
  approx::RegionBinding binding(std::function<std::uint64_t(std::uint64_t)> index_of =
                                    [](std::uint64_t i) { return i; }) {
    out.assign(n, -1.0);
    alt.assign(n, -1.0);
    current_ = &out;
    index_of_ = std::move(index_of);
    approx::RegionBinding b;
    b.name = "cache.region";
    b.in_dims = 1;
    b.out_dims = 1;
    b.gather = [](std::uint64_t i, std::span<double> in) {
      in[0] = static_cast<double>(i % 5);
    };
    b.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
      o[0] = static_cast<double>(i);
    };
    b.accurate_cost = [](std::uint64_t) { return 50.0; };
    b.commit = [this](std::uint64_t i, std::span<const double> o) {
      (*current_)[index_of_(i)] = o[0];
    };
    b.independent_items = true;  // index_of is a permutation
    b.commit_extents = [this](std::uint64_t i, approx::audit::ExtentSink& sink) {
      sink.writes(current_->data() + index_of_(i), sizeof(double));
    };
    return b;
  }

  void flip() { current_ = current_ == &out ? &alt : &out; }
  std::vector<double>& current() { return *current_; }

 private:
  std::vector<double>* current_ = nullptr;
  std::function<std::uint64_t(std::uint64_t)> index_of_;
};

approx::ExecTuning cache_tuning(bool extent_cache = true) {
  approx::ExecTuning tuning = serial_audit(AuditMode::kReport, true);
  tuning.audit_extent_cache = extent_cache;
  return tuning;
}

void run_once(const approx::RegionExecutor& executor, CacheRegion& region,
              const approx::RegionBinding& binding) {
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(region.n, 1, 128);
  const approx::RegionReport report =
      executor.run(pragma::parse_approx("none"), binding, region.n, launch);
  EXPECT_TRUE(report.stats.conflicts.empty());
  for (std::uint64_t i = 0; i < region.n; ++i) {
    SCOPED_TRACE(i);
    // A permutation of identity values covers every element exactly once.
    EXPECT_GE(region.current()[i], 0.0);
  }
}

TEST(AuditExtentCache, RepeatedLaunchSkipsTheWalk) {
  CacheRegion region;
  approx::RegionExecutor executor(sim::v100());
  executor.set_tuning(cache_tuning());
  const approx::RegionBinding binding = region.binding();

  run_once(executor, region, binding);
  auto stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.non_affine, 0u);

  run_once(executor, region, binding);
  run_once(executor, region, binding);
  stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 1u);  // one full walk total
  EXPECT_EQ(stats.hits, 2u);

  // A different item count is a different image: full walk again.
  const std::uint64_t full = region.n;
  region.n = full / 2;
  run_once(executor, region, binding);
  stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  region.n = full;
}

TEST(AuditExtentCache, NegativeStrideIsAffineToo) {
  CacheRegion region;
  const std::uint64_t n = region.n;
  approx::RegionExecutor executor(sim::v100());
  executor.set_tuning(cache_tuning());
  // Reversal: base = &out[n-1], per-item displacement -sizeof(double) in
  // wrapping address arithmetic.
  const approx::RegionBinding binding =
      region.binding([n](std::uint64_t i) { return n - 1 - i; });

  run_once(executor, region, binding);
  run_once(executor, region, binding);
  const auto stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.non_affine, 0u);
}

TEST(AuditExtentCache, PingPongBuffersOccupySeparateVariants) {
  CacheRegion region;
  approx::RegionExecutor executor(sim::v100());
  executor.set_tuning(cache_tuning());
  const approx::RegionBinding binding = region.binding();

  // First lap over each buffer walks; every later lap probes and hits.
  for (int lap = 0; lap < 4; ++lap) {
    run_once(executor, region, binding);
    region.flip();
  }
  const auto stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 2u);  // one walk per buffer
  EXPECT_EQ(stats.hits, 2u);
}

TEST(AuditExtentCache, NonAffinePatternIsNeverServedFromCache) {
  CacheRegion region;
  const std::uint64_t n = region.n;
  approx::RegionExecutor executor(sim::v100());
  executor.set_tuning(cache_tuning());
  // Piecewise-affine permutation (even items first): item 2 breaks the
  // stride fixed by items 0 and 1, so no single affine model fits.
  const approx::RegionBinding binding = region.binding(
      [n](std::uint64_t i) { return i % 2 == 0 ? i / 2 : n / 2 + i / 2; });

  run_once(executor, region, binding);
  run_once(executor, region, binding);
  const auto stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 2u);  // rebuilt exactly, per launch
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.non_affine, 2u);
}

TEST(AuditExtentCache, KnobOffLeavesTheCacheUntouched) {
  CacheRegion region;
  approx::RegionExecutor executor(sim::v100());
  executor.set_tuning(cache_tuning(/*extent_cache=*/false));
  const approx::RegionBinding binding = region.binding();

  run_once(executor, region, binding);
  run_once(executor, region, binding);
  const auto stats = executor.audit_cache_stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.non_affine, 0u);
}

}  // namespace
