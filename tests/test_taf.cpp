// Tests for the TAF state machine: window mechanics, stable-regime entry,
// credits, multi-output RSD and the sign-robust denominator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "approx/taf.hpp"
#include "common/error.hpp"

using namespace hpac;
using namespace hpac::approx;
using pragma::TafParams;

namespace {
TafState make_state(const TafParams& params, int out_dims, std::vector<double>& storage) {
  storage.assign(TafState::storage_doubles(params.history_size, out_dims), 0.0);
  return TafState(params, out_dims, storage);
}
}  // namespace

TEST(Taf, NoApproximationDuringWarmup) {
  std::vector<double> storage;
  TafState taf = make_state({3, 4, 0.5}, 1, storage);
  double v[1] = {10.0};
  taf.record_accurate(v);
  EXPECT_FALSE(taf.should_approximate());
  taf.record_accurate(v);
  EXPECT_FALSE(taf.should_approximate());
}

TEST(Taf, StableWindowGrantsPredictionCredits) {
  std::vector<double> storage;
  TafState taf = make_state({3, 4, 0.5}, 1, storage);
  double v[1] = {10.0};
  for (int i = 0; i < 3; ++i) taf.record_accurate(v);
  EXPECT_TRUE(taf.should_approximate());
  EXPECT_EQ(taf.credits(), 4);
}

TEST(Taf, PredictReturnsLastAccurateOutput) {
  std::vector<double> storage;
  TafState taf = make_state({2, 8, 0.5}, 1, storage);
  double v[1] = {5.0};
  taf.record_accurate(v);
  v[0] = 5.001;
  taf.record_accurate(v);
  ASSERT_TRUE(taf.should_approximate());
  double out[1] = {0.0};
  taf.predict(out);
  EXPECT_DOUBLE_EQ(out[0], 5.001);
}

TEST(Taf, CreditsAreConsumed) {
  std::vector<double> storage;
  TafState taf = make_state({1, 3, 0.5}, 1, storage);
  double v[1] = {1.0};
  taf.record_accurate(v);  // single-entry window: RSD 0 -> stable
  EXPECT_EQ(taf.credits(), 3);
  double out[1];
  taf.predict(out);
  taf.predict(out);
  taf.predict(out);
  EXPECT_FALSE(taf.should_approximate());
}

TEST(Taf, WindowRestartsAfterStableRegime) {
  std::vector<double> storage;
  TafState taf = make_state({2, 1, 0.5}, 1, storage);
  double v[1] = {7.0};
  taf.record_accurate(v);
  taf.record_accurate(v);
  ASSERT_TRUE(taf.should_approximate());
  double out[1];
  taf.predict(out);
  EXPECT_FALSE(taf.should_approximate());
  // One fresh accurate execution is not enough: history must refill.
  taf.record_accurate(v);
  EXPECT_FALSE(taf.should_approximate());
  taf.record_accurate(v);
  EXPECT_TRUE(taf.should_approximate());
}

TEST(Taf, UnstableOutputsNeverApproximate) {
  std::vector<double> storage;
  TafState taf = make_state({3, 4, 0.1}, 1, storage);
  for (int i = 0; i < 32; ++i) {
    double v[1] = {i % 2 ? 100.0 : 1.0};
    taf.record_accurate(v);
    EXPECT_FALSE(taf.should_approximate()) << "iteration " << i;
  }
}

TEST(Taf, WindowRsdInfiniteUntilFull) {
  std::vector<double> storage;
  TafState taf = make_state({4, 1, 0.5}, 1, storage);
  double v[1] = {2.0};
  taf.record_accurate(v);
  EXPECT_TRUE(std::isinf(taf.window_rsd()));
}

TEST(Taf, RsdMatchesHandComputedValue) {
  std::vector<double> storage;
  TafState taf = make_state({3, 1, 1e9}, 1, storage);  // huge threshold: no reset
  for (double x : {9.0, 10.0, 11.0}) {
    double v[1] = {x};
    taf.record_accurate(v);
  }
  // After entering stable regime the window resets; use a threshold of 0
  // instead to keep the window observable.
  std::vector<double> storage2;
  TafState taf2 = make_state({3, 1, 0.0}, 1, storage2);
  for (double x : {9.0, 10.0, 11.0}) {
    double v[1] = {x};
    taf2.record_accurate(v);
  }
  EXPECT_NEAR(taf2.window_rsd(), std::sqrt(2.0 / 3.0) / 10.0, 1e-12);
}

TEST(Taf, SignRobustDenominatorKeepsMixedSignsFinite) {
  // Force components oscillating around zero: the paper's sigma/|mu| is
  // infinite; our denominator uses mean |x| (identical for same-sign
  // windows) and stays finite.
  std::vector<double> storage;
  TafState taf = make_state({2, 1, 0.0}, 1, storage);
  double v[1] = {-1.0};
  taf.record_accurate(v);
  v[0] = 1.0;
  taf.record_accurate(v);
  EXPECT_TRUE(std::isfinite(taf.window_rsd()));
  EXPECT_NEAR(taf.window_rsd(), 1.0, 1e-12);
}

TEST(Taf, AllZeroWindowIsStable) {
  std::vector<double> storage;
  TafState taf = make_state({3, 8, 0.1}, 1, storage);
  double v[1] = {0.0};
  for (int i = 0; i < 3; ++i) taf.record_accurate(v);
  EXPECT_TRUE(taf.should_approximate());
  double out[1] = {99.0};
  taf.predict(out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Taf, MultiOutputUsesWorstDimension) {
  std::vector<double> storage;
  TafState taf = make_state({2, 4, 0.05}, 2, storage);
  // Dimension 0 constant, dimension 1 varying: must not activate.
  double a[2] = {5.0, 1.0};
  double b[2] = {5.0, 3.0};
  taf.record_accurate(a);
  taf.record_accurate(b);
  EXPECT_FALSE(taf.should_approximate());
}

TEST(Taf, PredictWithoutHistoryYieldsZeros) {
  std::vector<double> storage;
  TafState taf = make_state({2, 4, 0.5}, 2, storage);
  EXPECT_FALSE(taf.has_prediction());
  double out[2] = {1.0, 1.0};
  taf.predict(out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(Taf, StorageAccounting) {
  EXPECT_EQ(TafState::storage_doubles(3, 2), 3u * 2u + 2u);
  EXPECT_EQ(TafState::footprint_bytes(3, 2), (3u * 2u + 2u) * 8u + 16u);
  std::vector<double> small(2);
  EXPECT_THROW(TafState({3, 4, 0.5}, 1, small), Error);
}

// Property: for any history/prediction sizes, feeding a constant stream
// yields the approximation duty cycle p / (h + p) after the first window.
class TafDutyCycle : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TafDutyCycle, ConstantStreamDutyCycle) {
  const auto [h, p] = GetParam();
  std::vector<double> storage;
  TafState taf = make_state({h, p, 0.5}, 1, storage);
  int approximated = 0;
  const int total = 1000;
  for (int i = 0; i < total; ++i) {
    if (taf.should_approximate()) {
      double out[1];
      taf.predict(out);
      ++approximated;
    } else {
      double v[1] = {42.0};
      taf.record_accurate(v);
    }
  }
  const double expected = static_cast<double>(p) / (h + p);
  EXPECT_NEAR(static_cast<double>(approximated) / total, expected, 0.05)
      << "h=" << h << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Table2, TafDutyCycle,
                         ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 8),
                                           std::make_tuple(3, 16), std::make_tuple(5, 64),
                                           std::make_tuple(5, 512), std::make_tuple(4, 4)));

// --- storage accounting (shared-memory sizing is what gates feasibility) ---

TEST(Taf, StorageAccountingIsSelfConsistent) {
  for (const int h : {1, 2, 3, 5}) {
    for (const int dims : {1, 2, 4}) {
      const std::size_t doubles = TafState::storage_doubles(h, dims);
      EXPECT_EQ(doubles, static_cast<std::size_t>(h) * dims + dims);
      // The byte footprint covers exactly the doubles plus a fixed integer
      // bookkeeping block — never less than the raw storage.
      const std::size_t bytes = TafState::footprint_bytes(h, dims);
      EXPECT_EQ(bytes, doubles * sizeof(double) + 4 * sizeof(std::int32_t));
      EXPECT_GE(bytes, doubles * sizeof(double));
    }
  }
  // Monotone in both parameters.
  EXPECT_LT(TafState::footprint_bytes(2, 1), TafState::footprint_bytes(3, 1));
  EXPECT_LT(TafState::footprint_bytes(2, 1), TafState::footprint_bytes(2, 2));
}

TEST(Taf, RejectsUndersizedStorageSpan) {
  const TafParams params{3, 4, 0.5};
  std::vector<double> storage(TafState::storage_doubles(3, 2) - 1, 0.0);
  EXPECT_THROW(TafState(params, 2, storage), Error);
  // An exactly sized span is accepted.
  storage.assign(TafState::storage_doubles(3, 2), 0.0);
  EXPECT_NO_THROW(TafState(params, 2, storage));
}

// --- window_rsd golden baseline ---------------------------------------------
//
// These goldens pin the incremental (running-sum) RSD formulation that
// replaced the historical two-pass recompute: per-dimension running
// value/|value|/squared sums folded in insertion order (full-ring
// records subtract the evicted value first), sigma from E[x²] − μ² with
// a negative-variance clamp, sign-robust mean-|x| denominator, max
// across dimensions. The formulation change shifted the bits once —
// these literals were re-captured at that point (the old two-pass
// values are noted where they differ) — and is now the ONLY
// formulation, so any future drift in these bits is a real behavior
// change that would silently shift TAF activation decisions.

TEST(TafGolden, RsdExactBitsPerWindowShape) {
  {
    std::vector<double> storage;
    TafState taf = make_state({2, 1, 0.0}, 1, storage);
    for (double x : {3.0, 4.5}) {
      double v[1] = {x};
      taf.record_accurate(v);
    }
    EXPECT_EQ(taf.window_rsd(), 0x1.999999999999ap-3);  // 0.20000000000000001
  }
  {
    std::vector<double> storage;
    TafState taf = make_state({3, 1, 0.0}, 1, storage);
    for (double x : {0.1, 0.2, 0.30000000000000004}) {
      double v[1] = {x};
      taf.record_accurate(v);
    }
    // One ulp below the two-pass recompute's 0x1.a20bd700c2c3ep-2: the
    // only shape of the original four goldens whose bits moved.
    EXPECT_EQ(taf.window_rsd(), 0x1.a20bd700c2c3dp-2);  // 0.40824829046386296
  }
  {
    // Two output dimensions: dimension 0 (wildly varying) must win the
    // max over dimension 1 (near-constant, negative — exercising the
    // mean-|x| denominator on a same-sign negative window).
    std::vector<double> storage;
    TafState taf = make_state({4, 2, 0.0}, 2, storage);
    const double rows[4][2] = {{1.0, -7.0}, {2.0, -7.5}, {4.0, -6.5}, {8.0, -7.25}};
    for (const auto& row : rows) {
      double v[2] = {row[0], row[1]};
      taf.record_accurate(v);
    }
    EXPECT_EQ(taf.window_rsd(), 0x1.6e0a0a5e9fca2p-1);  // 0.7149203529842405
  }
}

TEST(TafGolden, RsdIncrementalFoldAfterWraparound) {
  // h=3 with threshold 0 (never stable): records 1e16, 1, -1e16 fill the
  // ring, then 2.0 overwrites slot 0, so the live window is {2, 1, -1e16}
  // but the running sum carries the whole insert/evict history:
  // ((1e16 + 1) + -1e16) - 1e16 + 2. Catastrophic cancellation at 1e16
  // magnifies any change in that fold order to well above one ulp, so
  // this golden pins the subtract-then-add eviction sequence itself.
  // (The bits happen to coincide with the historical storage-order
  // two-pass recompute on this data, which is why this golden survived
  // the incremental-formulation switch unchanged.)
  std::vector<double> storage;
  TafState taf = make_state({3, 1, 0.0}, 1, storage);
  for (double x : {1e16, 1.0, -1e16, 2.0}) {
    double v[1] = {x};
    taf.record_accurate(v);
  }
  EXPECT_EQ(taf.window_rsd(), 0x1.6a09e667f3bccp+0);  // 1.4142135623730949

  // The same fold spelled out, replaying record_accurate's running-sum
  // arithmetic and window_rsd's E[x²] − μ² exactly.
  double sum = 0, abs_sum = 0, sq_sum = 0;
  const double inserts[4] = {1e16, 1.0, -1e16, 2.0};
  for (int i = 0; i < 4; ++i) {
    if (i >= 3) {
      const double old = inserts[i - 3];
      sum -= old;
      abs_sum -= std::abs(old);
      sq_sum -= old * old;
    }
    sum += inserts[i];
    abs_sum += std::abs(inserts[i]);
    sq_sum += inserts[i] * inserts[i];
  }
  const double mu = sum / 3.0;
  double variance = sq_sum / 3.0 - mu * mu;
  if (variance < 0.0) variance = 0.0;
  EXPECT_EQ(taf.window_rsd(), std::sqrt(variance) / (abs_sum / 3.0));
}

// --- incremental vs recompute equivalence -----------------------------------
//
// The long-lived state's running sums carry insert/evict history; a fresh
// state fed only the live window contents folds them without evictions.
// These must agree: bit-exactly when the values make subtract-then-add
// exact (integers well inside 2^53), and to tight relative tolerance for
// arbitrary doubles (the deterministic drift the eviction fold can
// accumulate). Checked at EVERY fill state — warmup, exactly full, and
// deep into ring wraparound — and for multi-dimension windows.
TEST(Taf, IncrementalRsdMatchesFreshRecomputeAtEveryFillState) {
  const int h = 5;
  // Mixed-sign, varied-magnitude stream; exactly representable values so
  // the eviction subtraction is exact and equality is bitwise.
  const double exact_stream[] = {3, -7, 12, 5, -2, 9, -11, 4, 8, -6, 1, 13, -3, 2, 10};
  std::vector<double> storage;
  TafState taf = make_state({h, 1, 0.0}, 1, storage);  // threshold 0: never resets
  std::vector<double> seen;
  for (double x : exact_stream) {
    double v[1] = {x};
    taf.record_accurate(v);
    seen.push_back(x);
    const int fill = std::min<int>(static_cast<int>(seen.size()), h);
    EXPECT_EQ(taf.window_fill(), fill);
    std::vector<double> fresh_storage;
    TafState fresh = make_state({h, 1, 0.0}, 1, fresh_storage);
    for (std::size_t i = seen.size() - static_cast<std::size_t>(fill); i < seen.size(); ++i) {
      double w[1] = {seen[i]};
      fresh.record_accurate(w);
    }
    if (fill < h) {
      EXPECT_EQ(taf.window_rsd(), std::numeric_limits<double>::infinity());
    } else {
      EXPECT_EQ(taf.window_rsd(), fresh.window_rsd());
    }
  }
}

TEST(Taf, IncrementalRsdDriftStaysTinyForArbitraryDoubles) {
  const int h = 4;
  const int dims = 3;
  std::vector<double> storage;
  TafState taf = make_state({h, 1, 0.0}, dims, storage);
  std::vector<std::vector<double>> seen;
  // Deterministic pseudo-random doubles (LCG), mixed signs/magnitudes.
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  const auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(s >> 11) / 9007199254740992.0;  // [0,1)
    return (u - 0.5) * 2000.0;  // [-1000, 1000)
  };
  for (int step = 0; step < 40; ++step) {
    std::vector<double> row(dims);
    for (double& x : row) x = next();
    taf.record_accurate(row);
    seen.push_back(row);
    if (taf.window_fill() < h) continue;
    std::vector<double> fresh_storage;
    TafState fresh = make_state({h, 1, 0.0}, dims, fresh_storage);
    for (std::size_t i = seen.size() - h; i < seen.size(); ++i) {
      fresh.record_accurate(seen[i]);
    }
    const double incremental = taf.window_rsd();
    const double recompute = fresh.window_rsd();
    EXPECT_NEAR(incremental, recompute, 1e-9 * std::max(1.0, std::abs(recompute)))
        << "at step " << step;
  }
}
