// Tests for the exploration harness: Table-2 grids, the explorer's
// baseline/speedup bookkeeping, infeasible-config handling and the
// analysis helpers behind Figures 6, 11c and 12c.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "harness/analysis.hpp"
#include "pragma/parser.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::harness;

TEST(Table2, AxesMatchThePaper) {
  EXPECT_EQ(table2::taf_history_sizes(), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(table2::taf_prediction_sizes(),
            (std::vector<int>{2, 4, 8, 16, 32, 64, 128, 256, 512}));
  EXPECT_EQ(table2::memo_out_thresholds(),
            (std::vector<double>{0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0}));
  EXPECT_EQ(table2::iact_tables_per_warp(), (std::vector<int>{1, 2, 16, 32, 64}));
  EXPECT_EQ(table2::iact_table_sizes(), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(table2::perfo_skips(), (std::vector<int>{2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(table2::perfo_skip_percents().size(), 9u);
  EXPECT_EQ(table2::items_per_thread(),
            (std::vector<std::uint64_t>{8, 16, 32, 64, 128, 256, 512}));
}

TEST(Table2, SixtyFourTablesPerWarpIsAmdOnly) {
  for (const auto& spec : iact_specs(SweepDensity::kFull, 32)) {
    EXPECT_LE(spec.iact->tables_per_warp, 32);
  }
  bool found64 = false;
  for (const auto& spec : iact_specs(SweepDensity::kFull, 64)) {
    found64 = found64 || spec.iact->tables_per_warp == 64;
  }
  EXPECT_TRUE(found64);
}

TEST(Table2, QuickGridsCoverAxisEndpoints) {
  const auto quick = taf_specs(SweepDensity::kQuick);
  const auto full = taf_specs(SweepDensity::kFull);
  EXPECT_LT(quick.size(), full.size());
  bool has_min_thr = false, has_max_thr = false;
  for (const auto& spec : quick) {
    has_min_thr = has_min_thr || spec.taf->rsd_threshold == 0.3;
    has_max_thr = has_max_thr || spec.taf->rsd_threshold == 20.0;
  }
  EXPECT_TRUE(has_min_thr);
  EXPECT_TRUE(has_max_thr);
}

TEST(Table2, AllGeneratedSpecsValidate) {
  for (const auto& spec : taf_specs(SweepDensity::kFull)) EXPECT_NO_THROW(spec.validate());
  for (const auto& spec : iact_specs(SweepDensity::kFull, 64)) EXPECT_NO_THROW(spec.validate());
  for (const auto& spec : perfo_specs(SweepDensity::kFull)) EXPECT_NO_THROW(spec.validate());
  for (const auto& spec : curated_taf_specs(table2::hierarchies())) {
    EXPECT_NO_THROW(spec.validate());
  }
  for (const auto& spec : curated_iact_specs(32, table2::hierarchies())) {
    EXPECT_NO_THROW(spec.validate());
  }
  for (const auto& spec : curated_perfo_specs()) EXPECT_NO_THROW(spec.validate());
}

TEST(Table2, FullConfigCountIsPaperScale) {
  // The paper explored 57,288 configurations across 7 benchmarks and two
  // platforms; one benchmark on both platforms lands in the same order of
  // magnitude.
  const auto both = full_config_count(32) + full_config_count(64);
  EXPECT_GT(both, 8000u);
  EXPECT_LT(both, 60000u);
}

namespace {

/// A deterministic synthetic benchmark for harness tests: quadratic
/// region with strong grid-stride locality.
class ToyBenchmark : public Benchmark {
 public:
  std::string name() const override { return "toy"; }

  std::unique_ptr<Benchmark> fork() const override {
    return std::make_unique<ToyBenchmark>(*this);
  }

  RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                const sim::DeviceConfig& device) override {
    const std::uint64_t n = 1 << 12;
    offload::Device dev(device);
    approx::RegionExecutor executor(device);
    std::vector<double> out(n, 0.0);
    approx::RegionBinding binding;
    binding.in_dims = 1;
    binding.out_dims = 1;
    binding.gather = [](std::uint64_t i, std::span<double> in) {
      in[0] = static_cast<double>(i % 5);
    };
    binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
      o[0] = 10.0 + static_cast<double>(i % 5);
    };
    binding.accurate_cost = [](std::uint64_t) { return 100.0; };
    binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    RunOutput output;
    const auto report = executor.run(spec, binding, n, launch);
    output.timeline.kernel_seconds = report.timing.seconds;
    output.stats = report.stats;
    output.qoi = std::move(out);
    output.iterations = 10;
    return output;
  }
};

/// A benchmark whose timeline is all zeros: every scoped measurement is
/// degenerate (non-positive seconds).
class ZeroTimeBenchmark : public Benchmark {
 public:
  std::string name() const override { return "zero_time"; }

  RunOutput run(const pragma::ApproxSpec&, std::uint64_t,
                const sim::DeviceConfig&) override {
    RunOutput output;
    output.qoi = {1.0, 2.0, 3.0};
    return output;
  }
};

}  // namespace

TEST(Explorer, BaselineSpeedupIsOne) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  pragma::ApproxSpec none;
  const auto record = explorer.run_config(none, toy.default_items_per_thread());
  EXPECT_NEAR(record.speedup, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(record.error_percent, 0.0);
}

TEST(Explorer, InfeasibleConfigIsRecordedNotThrown) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  const auto spec = pragma::parse_approx("memo(in:4:0.5:3) in(x) out(y)");  // 3 !| 32
  const auto record = explorer.run_config(spec, 8);
  EXPECT_FALSE(record.feasible);
  EXPECT_NE(record.note.find("tables per warp"), std::string::npos);
}

TEST(Explorer, SweepFillsDatabase) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  const auto specs = curated_perfo_specs();
  const std::size_t feasible = explorer.sweep(specs, {1, 8});
  EXPECT_EQ(explorer.db().size(), specs.size() * 2);
  EXPECT_EQ(feasible, specs.size() * 2);
}

TEST(Explorer, RecordsDenormalizedParameters) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  const auto record =
      explorer.run_config(pragma::parse_approx("memo(out:4:32:1.5) level(warp)"), 8);
  EXPECT_EQ(record.history_size, 4);
  EXPECT_EQ(record.prediction_size, 32);
  EXPECT_DOUBLE_EQ(record.threshold, 1.5);
  EXPECT_EQ(record.level, pragma::HierarchyLevel::kWarp);
  EXPECT_EQ(record.technique, pragma::Technique::kTafMemo);
}

TEST(Explorer, DegenerateRunIsInfeasibleNotZeroSpeedup) {
  ZeroTimeBenchmark zero;
  Explorer explorer(zero, sim::v100());
  pragma::ApproxSpec none;
  const auto record = explorer.run_config(none, 1);
  EXPECT_FALSE(record.feasible);
  EXPECT_NE(record.note.find("non-positive"), std::string::npos);
  EXPECT_DOUBLE_EQ(record.speedup, 0.0);
}

TEST(Explorer, ParallelSweepMatchesSerialByteForByte) {
  // >= 32 configurations: 14 curated perforation specs x 3 ipt values.
  const auto specs = curated_perfo_specs();
  const std::vector<std::uint64_t> ipt_axis{1, 4, 8};
  ASSERT_GE(specs.size() * ipt_axis.size(), 32u);

  ToyBenchmark serial_bench, parallel_bench;
  Explorer serial(serial_bench, sim::v100());
  Explorer parallel(parallel_bench, sim::v100());
  const std::size_t serial_feasible = serial.sweep(specs, ipt_axis, 1);
  const std::size_t parallel_feasible = parallel.sweep(specs, ipt_axis, 4);

  EXPECT_EQ(serial_feasible, parallel_feasible);
  ASSERT_EQ(serial.db().size(), parallel.db().size());
  for (std::size_t i = 0; i < serial.db().size(); ++i) {
    const auto& a = serial.db().records()[i];
    const auto& b = parallel.db().records()[i];
    EXPECT_EQ(a.spec_text, b.spec_text) << "row " << i;
    EXPECT_EQ(a.items_per_thread, b.items_per_thread) << "row " << i;
    EXPECT_EQ(a.feasible, b.feasible) << "row " << i;
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup) << "row " << i;
    EXPECT_DOUBLE_EQ(a.error_percent, b.error_percent) << "row " << i;
  }

  std::ostringstream serial_csv, parallel_csv;
  serial.db().to_csv().write(serial_csv);
  parallel.db().to_csv().write(parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(Explorer, NonForkableBenchmarkStillSweeps) {
  // ZeroTimeBenchmark keeps the default fork() == nullptr, so a
  // multi-threaded sweep must quietly fall back to the serial path.
  ZeroTimeBenchmark zero;
  Explorer explorer(zero, sim::v100());
  pragma::ApproxSpec none;
  const std::size_t feasible = explorer.sweep({none, none}, {1, 2, 4}, 4);
  EXPECT_EQ(feasible, 0u);  // all runs are degenerate for this benchmark
  EXPECT_EQ(explorer.db().size(), 6u);
}

TEST(Analysis, BestUnderErrorPicksFastestQualifying) {
  std::vector<RunRecord> records(3);
  records[0].speedup = 3.0;
  records[0].error_percent = 15.0;  // too lossy
  records[1].speedup = 2.0;
  records[1].error_percent = 5.0;
  records[2].speedup = 1.5;
  records[2].error_percent = 1.0;
  const auto best = best_under_error(records, 10.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->speedup, 2.0);
}

TEST(Analysis, BestUnderErrorSkipsInfeasible) {
  std::vector<RunRecord> records(1);
  records[0].speedup = 9.0;
  records[0].error_percent = 0.0;
  records[0].feasible = false;
  EXPECT_FALSE(best_under_error(records, 10.0).has_value());
}

TEST(Analysis, DecimateKeepsExtremesPerBin) {
  std::vector<RunRecord> records;
  for (int i = 0; i < 100; ++i) {
    RunRecord r;
    r.error_percent = static_cast<double>(i % 10);
    r.speedup = static_cast<double>(i);
    records.push_back(r);
  }
  const auto kept = decimate_for_plot(records, 10, 0.10);
  EXPECT_LT(kept.size(), records.size());
  EXPECT_FALSE(kept.empty());
}

TEST(Analysis, ConvergenceCorrelationPerfectLine) {
  std::vector<RunRecord> records;
  for (int i = 1; i <= 10; ++i) {
    RunRecord r;
    r.baseline_iterations = 100;
    r.iterations = 100.0 / i;
    r.speedup = static_cast<double>(i);
    records.push_back(r);
  }
  const auto corr = convergence_correlation(records);
  EXPECT_NEAR(corr.regression.r2, 1.0, 1e-9);
  EXPECT_NEAR(corr.regression.slope, 1.0, 1e-9);
}

TEST(Analysis, GeomeanBestTakesPerTechniqueBest) {
  std::vector<RunRecord> records(3);
  records[0].benchmark = "a";
  records[0].technique = pragma::Technique::kTafMemo;
  records[0].speedup = 2.0;
  records[0].error_percent = 1.0;
  records[1] = records[0];
  records[1].speedup = 4.0;  // better; should be the one counted
  records[2].benchmark = "b";
  records[2].technique = pragma::Technique::kPerforation;
  records[2].speedup = 1.0;
  records[2].error_percent = 2.0;
  EXPECT_NEAR(geomean_best_speedup(records, 10.0), std::sqrt(4.0 * 1.0), 1e-12);
}

TEST(ResultDb, CsvExportHasAllRows) {
  ResultDb db;
  RunRecord r;
  r.benchmark = "x";
  r.spec_text = "perfo(small:2)";
  db.add(r);
  db.add(r);
  const auto csv = db.to_csv();
  EXPECT_EQ(csv.row_count(), 2u);
  EXPECT_NO_THROW(csv.column_index("speedup"));
  EXPECT_NO_THROW(csv.column_index("error_percent"));
}
