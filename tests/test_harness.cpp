// Tests for the exploration harness: Table-2 grids, the explorer's
// baseline/speedup bookkeeping, infeasible-config handling and the
// analysis helpers behind Figures 6, 11c and 12c.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "common/scheduler.hpp"
#include "harness/analysis.hpp"
#include "pragma/parser.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"
#include "sim/device.hpp"

using namespace hpac;
using namespace hpac::harness;

TEST(Table2, AxesMatchThePaper) {
  EXPECT_EQ(table2::taf_history_sizes(), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(table2::taf_prediction_sizes(),
            (std::vector<int>{2, 4, 8, 16, 32, 64, 128, 256, 512}));
  EXPECT_EQ(table2::memo_out_thresholds(),
            (std::vector<double>{0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0}));
  EXPECT_EQ(table2::iact_tables_per_warp(), (std::vector<int>{1, 2, 16, 32, 64}));
  EXPECT_EQ(table2::iact_table_sizes(), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(table2::perfo_skips(), (std::vector<int>{2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(table2::perfo_skip_percents().size(), 9u);
  EXPECT_EQ(table2::items_per_thread(),
            (std::vector<std::uint64_t>{8, 16, 32, 64, 128, 256, 512}));
}

TEST(Table2, SixtyFourTablesPerWarpIsAmdOnly) {
  for (const auto& spec : iact_specs(SweepDensity::kFull, 32)) {
    EXPECT_LE(spec.iact->tables_per_warp, 32);
  }
  bool found64 = false;
  for (const auto& spec : iact_specs(SweepDensity::kFull, 64)) {
    found64 = found64 || spec.iact->tables_per_warp == 64;
  }
  EXPECT_TRUE(found64);
}

TEST(Table2, QuickGridsCoverAxisEndpoints) {
  const auto quick = taf_specs(SweepDensity::kQuick);
  const auto full = taf_specs(SweepDensity::kFull);
  EXPECT_LT(quick.size(), full.size());
  bool has_min_thr = false, has_max_thr = false;
  for (const auto& spec : quick) {
    has_min_thr = has_min_thr || spec.taf->rsd_threshold == 0.3;
    has_max_thr = has_max_thr || spec.taf->rsd_threshold == 20.0;
  }
  EXPECT_TRUE(has_min_thr);
  EXPECT_TRUE(has_max_thr);
}

TEST(Table2, AllGeneratedSpecsValidate) {
  for (const auto& spec : taf_specs(SweepDensity::kFull)) EXPECT_NO_THROW(spec.validate());
  for (const auto& spec : iact_specs(SweepDensity::kFull, 64)) EXPECT_NO_THROW(spec.validate());
  for (const auto& spec : perfo_specs(SweepDensity::kFull)) EXPECT_NO_THROW(spec.validate());
  for (const auto& spec : curated_taf_specs(table2::hierarchies())) {
    EXPECT_NO_THROW(spec.validate());
  }
  for (const auto& spec : curated_iact_specs(32, table2::hierarchies())) {
    EXPECT_NO_THROW(spec.validate());
  }
  for (const auto& spec : curated_perfo_specs()) EXPECT_NO_THROW(spec.validate());
}

TEST(Table2, FullConfigCountIsPaperScale) {
  // The paper explored 57,288 configurations across 7 benchmarks and two
  // platforms; one benchmark on both platforms lands in the same order of
  // magnitude.
  const auto both = full_config_count(32) + full_config_count(64);
  EXPECT_GT(both, 8000u);
  EXPECT_LT(both, 60000u);
}

namespace {

/// A deterministic synthetic benchmark for harness tests: quadratic
/// region with strong grid-stride locality.
class ToyBenchmark : public Benchmark {
 public:
  std::string name() const override { return "toy"; }

  std::unique_ptr<Benchmark> fork() const override {
    return std::make_unique<ToyBenchmark>(*this);
  }

  RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                const sim::DeviceConfig& device) override {
    const std::uint64_t n = 1 << 12;
    offload::Device dev(device);
    approx::RegionExecutor executor(device);
    std::vector<double> out(n, 0.0);
    approx::RegionBinding binding;
    binding.in_dims = 1;
    binding.out_dims = 1;
    binding.gather = [](std::uint64_t i, std::span<double> in) {
      in[0] = static_cast<double>(i % 5);
    };
    binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
      o[0] = 10.0 + static_cast<double>(i % 5);
    };
    binding.accurate_cost = [](std::uint64_t) { return 100.0; };
    binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    RunOutput output;
    const auto report = executor.run(spec, binding, n, launch);
    output.timeline.kernel_seconds = report.timing.seconds;
    output.stats = report.stats;
    output.qoi = std::move(out);
    output.iterations = 10;
    return output;
  }
};

/// A benchmark whose timeline is all zeros: every scoped measurement is
/// degenerate (non-positive seconds).
class ZeroTimeBenchmark : public Benchmark {
 public:
  std::string name() const override { return "zero_time"; }

  RunOutput run(const pragma::ApproxSpec&, std::uint64_t,
                const sim::DeviceConfig&) override {
    RunOutput output;
    output.qoi = {1.0, 2.0, 3.0};
    return output;
  }
};

}  // namespace

TEST(Explorer, BaselineSpeedupIsOne) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  pragma::ApproxSpec none;
  const auto record = explorer.run_config(none, toy.default_items_per_thread());
  EXPECT_NEAR(record.speedup, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(record.error_percent, 0.0);
}

TEST(Explorer, InfeasibleConfigIsRecordedNotThrown) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  const auto spec = pragma::parse_approx("memo(in:4:0.5:3) in(x) out(y)");  // 3 !| 32
  const auto record = explorer.run_config(spec, 8);
  EXPECT_FALSE(record.feasible);
  EXPECT_NE(record.note.find("tables per warp"), std::string::npos);
}

TEST(Explorer, SweepFillsDatabase) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  const auto specs = curated_perfo_specs();
  const std::size_t feasible = explorer.sweep(specs, {1, 8});
  EXPECT_EQ(explorer.db().size(), specs.size() * 2);
  EXPECT_EQ(feasible, specs.size() * 2);
}

TEST(Explorer, RecordsDenormalizedParameters) {
  ToyBenchmark toy;
  Explorer explorer(toy, sim::v100());
  const auto record =
      explorer.run_config(pragma::parse_approx("memo(out:4:32:1.5) level(warp)"), 8);
  EXPECT_EQ(record.history_size, 4);
  EXPECT_EQ(record.prediction_size, 32);
  EXPECT_DOUBLE_EQ(record.threshold, 1.5);
  EXPECT_EQ(record.level, pragma::HierarchyLevel::kWarp);
  EXPECT_EQ(record.technique, pragma::Technique::kTafMemo);
}

TEST(Explorer, DegenerateRunIsInfeasibleNotZeroSpeedup) {
  ZeroTimeBenchmark zero;
  Explorer explorer(zero, sim::v100());
  pragma::ApproxSpec none;
  const auto record = explorer.run_config(none, 1);
  EXPECT_FALSE(record.feasible);
  EXPECT_NE(record.note.find("non-positive"), std::string::npos);
  EXPECT_DOUBLE_EQ(record.speedup, 0.0);
}

TEST(Explorer, ParallelSweepMatchesSerialByteForByte) {
  // >= 32 configurations: 14 curated perforation specs x 3 ipt values.
  const auto specs = curated_perfo_specs();
  const std::vector<std::uint64_t> ipt_axis{1, 4, 8};
  ASSERT_GE(specs.size() * ipt_axis.size(), 32u);

  ToyBenchmark serial_bench, parallel_bench;
  Explorer serial(serial_bench, sim::v100());
  Explorer parallel(parallel_bench, sim::v100());
  const std::size_t serial_feasible = serial.sweep(specs, ipt_axis, 1);
  const std::size_t parallel_feasible = parallel.sweep(specs, ipt_axis, 4);

  EXPECT_EQ(serial_feasible, parallel_feasible);
  ASSERT_EQ(serial.db().size(), parallel.db().size());
  for (std::size_t i = 0; i < serial.db().size(); ++i) {
    const auto& a = serial.db().records()[i];
    const auto& b = parallel.db().records()[i];
    EXPECT_EQ(a.spec_text, b.spec_text) << "row " << i;
    EXPECT_EQ(a.items_per_thread, b.items_per_thread) << "row " << i;
    EXPECT_EQ(a.feasible, b.feasible) << "row " << i;
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup) << "row " << i;
    EXPECT_DOUBLE_EQ(a.error_percent, b.error_percent) << "row " << i;
  }

  std::ostringstream serial_csv, parallel_csv;
  serial.db().to_csv().write(serial_csv);
  parallel.db().to_csv().write(parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(Explorer, NonForkableBenchmarkStillSweeps) {
  // ZeroTimeBenchmark keeps the default fork() == nullptr, so a
  // multi-threaded sweep must quietly fall back to the serial path.
  ZeroTimeBenchmark zero;
  Explorer explorer(zero, sim::v100());
  pragma::ApproxSpec none;
  const std::size_t feasible = explorer.sweep({none, none}, {1, 2, 4}, 4);
  EXPECT_EQ(feasible, 0u);  // all runs are degenerate for this benchmark
  EXPECT_EQ(explorer.db().size(), 6u);
}

TEST(Analysis, BestUnderErrorPicksFastestQualifying) {
  std::vector<RunRecord> records(3);
  records[0].speedup = 3.0;
  records[0].error_percent = 15.0;  // too lossy
  records[1].speedup = 2.0;
  records[1].error_percent = 5.0;
  records[2].speedup = 1.5;
  records[2].error_percent = 1.0;
  const auto best = best_under_error(records, 10.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->speedup, 2.0);
}

TEST(Analysis, BestUnderErrorSkipsInfeasible) {
  std::vector<RunRecord> records(1);
  records[0].speedup = 9.0;
  records[0].error_percent = 0.0;
  records[0].feasible = false;
  EXPECT_FALSE(best_under_error(records, 10.0).has_value());
}

TEST(Analysis, DecimateKeepsExtremesPerBin) {
  std::vector<RunRecord> records;
  for (int i = 0; i < 100; ++i) {
    RunRecord r;
    r.error_percent = static_cast<double>(i % 10);
    r.speedup = static_cast<double>(i);
    records.push_back(r);
  }
  const auto kept = decimate_for_plot(records, 10, 0.10);
  EXPECT_LT(kept.size(), records.size());
  EXPECT_FALSE(kept.empty());
}

TEST(Analysis, ConvergenceCorrelationPerfectLine) {
  std::vector<RunRecord> records;
  for (int i = 1; i <= 10; ++i) {
    RunRecord r;
    r.baseline_iterations = 100;
    r.iterations = 100.0 / i;
    r.speedup = static_cast<double>(i);
    records.push_back(r);
  }
  const auto corr = convergence_correlation(records);
  EXPECT_NEAR(corr.regression.r2, 1.0, 1e-9);
  EXPECT_NEAR(corr.regression.slope, 1.0, 1e-9);
}

TEST(Analysis, GeomeanBestTakesPerTechniqueBest) {
  std::vector<RunRecord> records(3);
  records[0].benchmark = "a";
  records[0].technique = pragma::Technique::kTafMemo;
  records[0].speedup = 2.0;
  records[0].error_percent = 1.0;
  records[1] = records[0];
  records[1].speedup = 4.0;  // better; should be the one counted
  records[2].benchmark = "b";
  records[2].technique = pragma::Technique::kPerforation;
  records[2].speedup = 1.0;
  records[2].error_percent = 2.0;
  EXPECT_NEAR(geomean_best_speedup(records, 10.0), std::sqrt(4.0 * 1.0), 1e-12);
}

TEST(Analysis, DecimateEmptyInputYieldsEmpty) {
  EXPECT_TRUE(decimate_for_plot({}, 10, 0.1).empty());
  // All-infeasible input decimates to nothing as well.
  std::vector<RunRecord> records(3);
  for (auto& r : records) r.feasible = false;
  EXPECT_TRUE(decimate_for_plot(records, 10, 0.1).empty());
}

TEST(Analysis, DecimateSingleRecordSurvives) {
  std::vector<RunRecord> records(1);
  records[0].error_percent = 2.5;
  records[0].speedup = 1.2;
  const auto kept = decimate_for_plot(records, 10, 0.1);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].speedup, 1.2);
}

TEST(Analysis, DecimateRejectsNonPositiveIntervals) {
  std::vector<RunRecord> records(2);
  EXPECT_THROW(decimate_for_plot(records, 0, 0.1), Error);
  EXPECT_THROW(decimate_for_plot(records, -4, 0.1), Error);
  EXPECT_THROW(decimate_for_plot(records, 10, 0.0), Error);
  EXPECT_THROW(decimate_for_plot(records, 10, 1.5), Error);
}

TEST(Analysis, GeomeanBestWithNoFeasibleRecordIsZero) {
  EXPECT_DOUBLE_EQ(geomean_best_speedup({}, 10.0), 0.0);
  std::vector<RunRecord> records(2);
  records[0].feasible = false;
  records[0].speedup = 3.0;
  records[1].error_percent = 50.0;  // feasible but over the bound
  records[1].speedup = 2.0;
  EXPECT_DOUBLE_EQ(geomean_best_speedup(records, 10.0), 0.0);
}

TEST(Analysis, BestUnderErrorEmptyAndBoundaryCases) {
  EXPECT_FALSE(best_under_error({}, 10.0).has_value());
  std::vector<RunRecord> records(1);
  records[0].error_percent = 10.0;  // the bound is exclusive
  records[0].speedup = 5.0;
  EXPECT_FALSE(best_under_error(records, 10.0).has_value());
  EXPECT_TRUE(errors_under(records, 10.0).empty());
}

TEST(Analysis, PerDeviceGeomeanBestSplitsByDevice) {
  std::vector<RunRecord> records(4);
  records[0].benchmark = "a";
  records[0].device = "v100";
  records[0].technique = pragma::Technique::kTafMemo;
  records[0].speedup = 4.0;
  records[0].error_percent = 1.0;
  records[1] = records[0];
  records[1].device = "mi250x";
  records[1].speedup = 2.0;
  records[2] = records[0];
  records[2].device = "mi250x";
  records[2].technique = pragma::Technique::kPerforation;
  records[2].speedup = 8.0;
  records[3] = records[0];
  records[3].device = "a100";
  records[3].feasible = false;

  const auto table = per_device_geomean_best(records, 10.0);
  ASSERT_EQ(table.size(), 3u);  // sorted: a100, mi250x, v100
  EXPECT_EQ(table[0].device, "a100");
  EXPECT_DOUBLE_EQ(table[0].geomean_best, 0.0);
  EXPECT_EQ(table[0].feasible, 0u);
  EXPECT_EQ(table[0].total, 1u);
  EXPECT_EQ(table[1].device, "mi250x");
  EXPECT_NEAR(table[1].geomean_best, std::sqrt(2.0 * 8.0), 1e-12);
  EXPECT_EQ(table[2].device, "v100");
  EXPECT_DOUBLE_EQ(table[2].geomean_best, 4.0);
}

namespace {

/// A record exercising every CSV column, including cells that force
/// quoting in the serialized form.
RunRecord tricky_record() {
  RunRecord r;
  r.benchmark = "kmeans";
  r.device = "mi250x";
  r.technique = pragma::Technique::kIactMemo;
  r.spec_text = "memo(in:4:0.5:16) in(x) out(y)";
  r.level = pragma::HierarchyLevel::kWarp;
  r.items_per_thread = 512;
  r.feasible = false;
  r.note = "line\nbreak, with \"quotes\" and commas";
  r.speedup = 1.0 / 3.0;
  r.error_percent = 12.3456789;
  r.approx_ratio = 0.25;
  r.kernel_seconds = 1.5e-4;
  r.end_to_end_seconds = 2.25e-3;
  r.iterations = 42;
  r.baseline_iterations = 60;
  r.threshold = 0.5;
  r.history_size = 3;
  r.prediction_size = 8;
  r.table_size = 4;
  r.tables_per_warp = 16;
  r.perfo_kind = "small";
  r.perfo_stride = 2;
  r.perfo_fraction = 0.3;
  return r;
}

}  // namespace

TEST(RunRecordCsv, RowRoundTripRestoresEveryField) {
  ResultDb db;
  db.add(tricky_record());
  std::ostringstream os;
  db.to_csv().write(os);
  std::istringstream is(os.str());
  const CsvTable loaded = CsvTable::load(is);
  ASSERT_EQ(loaded.row_count(), 1u);
  const RunRecord r = RunRecord::from_row(loaded, 0);
  const RunRecord expect = tricky_record();
  EXPECT_EQ(r.benchmark, expect.benchmark);
  EXPECT_EQ(r.device, expect.device);
  EXPECT_EQ(r.technique, expect.technique);
  EXPECT_EQ(r.spec_text, expect.spec_text);
  EXPECT_EQ(r.level, expect.level);
  EXPECT_EQ(r.items_per_thread, expect.items_per_thread);
  EXPECT_EQ(r.feasible, expect.feasible);
  EXPECT_EQ(r.note, expect.note);
  EXPECT_DOUBLE_EQ(r.speedup, expect.speedup);  // exact: shortest-round-trip doubles
  EXPECT_DOUBLE_EQ(r.error_percent, expect.error_percent);
  EXPECT_DOUBLE_EQ(r.approx_ratio, expect.approx_ratio);
  EXPECT_DOUBLE_EQ(r.kernel_seconds, expect.kernel_seconds);
  EXPECT_DOUBLE_EQ(r.end_to_end_seconds, expect.end_to_end_seconds);
  EXPECT_DOUBLE_EQ(r.iterations, expect.iterations);
  EXPECT_DOUBLE_EQ(r.baseline_iterations, expect.baseline_iterations);
  EXPECT_DOUBLE_EQ(r.threshold, expect.threshold);
  EXPECT_EQ(r.history_size, expect.history_size);
  EXPECT_EQ(r.prediction_size, expect.prediction_size);
  EXPECT_EQ(r.table_size, expect.table_size);
  EXPECT_EQ(r.tables_per_warp, expect.tables_per_warp);
  EXPECT_EQ(r.perfo_kind, expect.perfo_kind);
  EXPECT_EQ(r.perfo_stride, expect.perfo_stride);
  EXPECT_DOUBLE_EQ(r.perfo_fraction, expect.perfo_fraction);
}

TEST(RunRecordCsv, SaveLoadReserializeIsByteIdentical) {
  ResultDb db;
  db.add(tricky_record());
  RunRecord plain;
  plain.benchmark = "lulesh";
  plain.device = "v100";
  plain.spec_text = "perfo(small:2)";
  plain.speedup = 1.25;
  db.add(plain);
  const std::string path = testing::TempDir() + "hpac_record_roundtrip.csv";
  db.save(path);
  const ResultDb loaded = ResultDb::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  std::ostringstream original, reserialized;
  db.to_csv().write(original);
  loaded.to_csv().write(reserialized);
  EXPECT_EQ(reserialized.str(), original.str());
  std::remove(path.c_str());
}

TEST(RunRecordCsv, LoadRejectsForeignColumns) {
  const std::string path = testing::TempDir() + "hpac_record_badschema.csv";
  {
    std::ofstream out(path);
    out << "benchmark,speedup\nx,2\n";
  }
  EXPECT_THROW(ResultDb::load(path), Error);
  std::remove(path.c_str());
}

TEST(RunRecordCsv, TechniqueAndHierarchyNamesRoundTrip) {
  using pragma::Technique;
  for (const auto t : {Technique::kNone, Technique::kTafMemo, Technique::kIactMemo,
                       Technique::kPerforation}) {
    EXPECT_EQ(pragma::technique_from_name(pragma::technique_name(t)), t);
  }
  using pragma::HierarchyLevel;
  for (const auto level :
       {HierarchyLevel::kThread, HierarchyLevel::kWarp, HierarchyLevel::kBlock}) {
    EXPECT_EQ(pragma::hierarchy_from_name(pragma::hierarchy_name(level)), level);
  }
  EXPECT_THROW(pragma::technique_from_name("hologram"), ParseError);
  EXPECT_THROW(pragma::hierarchy_from_name("galaxy"), ParseError);
}

TEST(ResultDb, CsvExportHasAllRows) {
  ResultDb db;
  RunRecord r;
  r.benchmark = "x";
  r.spec_text = "perfo(small:2)";
  db.add(r);
  db.add(r);
  const auto csv = db.to_csv();
  EXPECT_EQ(csv.row_count(), 2u);
  EXPECT_NO_THROW(csv.column_index("speedup"));
  EXPECT_NO_THROW(csv.column_index("error_percent"));
}

namespace {

/// ToyBenchmark that counts fork() calls across the whole clone tree —
/// forks of forks report into the same root counter.
class ForkCountingBenchmark : public ToyBenchmark {
 public:
  ForkCountingBenchmark() : counter_(std::make_shared<std::atomic<std::size_t>>(0)) {}

  std::unique_ptr<Benchmark> fork() const override {
    counter_->fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<ForkCountingBenchmark>(*this);
  }

  std::size_t fork_count() const { return counter_->load(); }

 private:
  std::shared_ptr<std::atomic<std::size_t>> counter_;
};

}  // namespace

TEST(Explorer, LazyForkingNeverExceedsParticipantsOnOneSpecSweep) {
  // One spec x two ipt values = two tasks. Forks are created lazily per
  // participant slot, so at most min(participants, tasks) = 2 clones can
  // ever exist — and when the calling thread claims both indices before a
  // worker steals, exactly 1 (the slot-0 probe). The eager scheme forked
  // one per slot up front unconditionally.
  ForkCountingBenchmark bench;
  Explorer explorer(bench, sim::v100());
  const auto specs = std::vector<pragma::ApproxSpec>{pragma::ApproxSpec{}};
  const std::size_t feasible = explorer.sweep(specs, {1, 4}, 8);
  EXPECT_EQ(feasible, 2u);
  EXPECT_GE(bench.fork_count(), 1u);
  EXPECT_LE(bench.fork_count(), 2u);
  EXPECT_EQ(explorer.db().size(), 2u);
}

TEST(Explorer, LazyForkingSerialSweepNeverForks) {
  ForkCountingBenchmark bench;
  Explorer explorer(bench, sim::v100());
  explorer.sweep({pragma::ApproxSpec{}}, {1, 4}, /*num_threads=*/1);
  EXPECT_EQ(bench.fork_count(), 0u);
}

TEST(Explorer, LazyForkingParallelSweepStaysByteIdenticalToSerial) {
  const auto specs = curated_perfo_specs();
  ForkCountingBenchmark serial_bench, parallel_bench;
  Explorer serial(serial_bench, sim::v100());
  Explorer parallel(parallel_bench, sim::v100());
  serial.sweep(specs, {1, 4}, 1);
  parallel.sweep(specs, {1, 4}, 4);
  const std::size_t workers = std::min<std::size_t>(
      {Scheduler::recommended_threads(4, specs.size() * 2), Scheduler::shared().parallelism()});
  EXPECT_LE(parallel_bench.fork_count(), workers);
  std::ostringstream serial_csv, parallel_csv;
  serial.db().to_csv().write(serial_csv);
  parallel.db().to_csv().write(parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}
