// Figure 9: (a)/(b) Leukocyte under TAF and iACT; (c) MiniFE under TAF.
//
// Paper claims reproduced here:
//  * Leukocyte TAF reaches ~1.99x with ~1.12% error;
//  * Leukocyte iACT reduces error but *always slows the application down*
//    (cache lookups + euclidean distances outweigh the IMGVF update);
//  * MiniFE TAF errors explode (593% .. 3.4e22%) because locally
//    introduced SpMV errors propagate through CG iterations;
//  * iACT is not applicable to MiniFE (non-uniform CSR row inputs).

#include <cstdio>

#include "apps/leukocyte.hpp"
#include "apps/minife.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 9 — Leukocyte (TAF, iACT) and MiniFE (TAF)",
                      "Leukocyte TAF 1.99x @ 1.12%; iACT always a slowdown; MiniFE error "
                      "593%..3.4e22%; iACT inapplicable to MiniFE");

  const auto levels = table2::hierarchies();
  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());

    // --- Leukocyte -------------------------------------------------------
    {
      apps::Leukocyte app;
      Explorer explorer(app, device);
      auto taf = opts.curated_only ? curated_taf_specs(levels) : taf_specs(opts.density);
      auto iact = opts.curated_only ? curated_iact_specs(device.warp_size, levels)
                                    : iact_specs(opts.density, device.warp_size);
      explorer.sweep(taf, {8, 64, 256});
      explorer.sweep(iact, {8, 64});

      auto taf_records = explorer.db().where(
          [](const RunRecord& r) { return r.technique == pragma::Technique::kTafMemo; });
      auto best = best_under_error(taf_records, 10.0);
      if (best) {
        std::printf("  leukocyte TAF best <10%%: %.2fx @ %.3f%% (%s)\n", best->speedup,
                    best->error_percent, best->spec_text.c_str());
      }
      auto iact_records = explorer.db().where([](const RunRecord& r) {
        return r.technique == pragma::Technique::kIactMemo && r.feasible;
      });
      double max_speedup = 0;
      double min_err = 1e300;
      for (const auto& r : iact_records) {
        max_speedup = std::max(max_speedup, r.speedup);
        min_err = std::min(min_err, r.error_percent);
      }
      std::printf("  leukocyte iACT: max speedup %.2fx over %zu configs "
                  "(paper: always < 1x), min error %.3g%%\n",
                  max_speedup, iact_records.size(), min_err);
      bench::save_db(explorer.db(), opts, "fig09ab_leukocyte_" + device.name);
    }

    // --- MiniFE ----------------------------------------------------------
    {
      apps::MiniFe app;
      Explorer explorer(app, device);
      auto taf = opts.curated_only ? curated_taf_specs(levels) : taf_specs(opts.density);
      explorer.sweep(taf, {8, 64});

      double min_err = 1e300, max_err = 0;
      std::size_t approximating = 0;
      for (const auto& r : explorer.db().records()) {
        if (!r.feasible || r.approx_ratio <= 0.0) continue;
        ++approximating;
        min_err = std::min(min_err, r.error_percent);
        max_err = std::max(max_err, r.error_percent);
      }
      std::printf("  minife TAF error range over %zu approximating configs: "
                  "%.3g%% .. %.3g%% (paper: 593%% .. 3.4e22%%)\n",
                  approximating, approximating ? min_err : 0.0, max_err);

      // iACT is rejected: the SpMV region has no uniform input width.
      RunRecord rejected = explorer.run_config(
          pragma::parse_approx("memo(in:4:0.5:2) in(row[i]) out(y[i])"), 8);
      std::printf("  minife iACT: %s (%s)\n",
                  rejected.feasible ? "UNEXPECTEDLY RAN" : "not applicable",
                  rejected.note.c_str());
      bench::save_db(explorer.db(), opts, "fig09c_minife_" + device.name);
    }
  }
  return 0;
}
