// Footnote-3 ablation: iACT table replacement policy, round-robin vs
// CLOCK. The paper: "we use a round-robin replacement policy. We also
// implemented CLOCK and found no effect." This bench runs matched iACT
// configurations on Blackscholes (the most cache-friendly workload, tiled
// distinct options) under both policies and compares speedup and error.

#include <cstdio>

#include "apps/blackscholes.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Footnote 3 ablation — iACT replacement policy",
                      "CLOCK vs round-robin: no effect");

  const sim::DeviceConfig device = opts.devices.front();
  apps::Blackscholes app;
  Explorer explorer(app, device);

  TextTable table({"config", "policy", "speedup", "MAPE %", "% approximated"});
  double max_speedup_delta = 0;
  double max_error_delta = 0;
  for (int tsize : {2, 4, 8}) {
    for (double thr : {0.5, 0.9, 5.0}) {
      for (const char* policy : {"rr", "clock"}) {
        const std::string clause = strings::format(
            "memo(in:%d:%g:2) replacement(%s) in(opt[i]) out(price[i])", tsize, thr, policy);
        RunRecord r = explorer.run_config(pragma::parse_approx(clause), 64);
        table.add_row({strings::format("tsize=%d thr=%g", tsize, thr), policy,
                       strings::format("%.4f", r.speedup),
                       strings::format("%.5f", r.error_percent),
                       strings::format("%.1f", 100 * r.approx_ratio)});
      }
      const auto& records = explorer.db().records();
      const RunRecord& rr = records[records.size() - 2];
      const RunRecord& clock = records[records.size() - 1];
      max_speedup_delta =
          std::max(max_speedup_delta, std::abs(rr.speedup - clock.speedup));
      max_error_delta =
          std::max(max_error_delta, std::abs(rr.error_percent - clock.error_percent));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("max |speedup delta| = %.4f, max |error delta| = %.4f%%  "
              "(paper: no effect)\n\n",
              max_speedup_delta, max_error_delta);
  bench::save_db(explorer.db(), opts, "ablation_iact_replacement");
  return 0;
}
