#pragma once

// Shared plumbing for the figure/table reproduction benches: option
// parsing (--device, --full, --out-dir), consistent headers, and CSV
// persistence of each bench's result database.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "harness/params.hpp"
#include "harness/record.hpp"
#include "sim/device.hpp"

namespace hpac::bench {

struct Options {
  std::vector<sim::DeviceConfig> devices;  ///< platforms to evaluate
  harness::SweepDensity density = harness::SweepDensity::kQuick;
  bool curated_only = true;  ///< default fixed-budget sweep; --full widens
  std::string out_dir = "bench_results";
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  bool nvidia = true;
  bool amd = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      opts.density = harness::SweepDensity::kFull;
      opts.curated_only = false;
    } else if (arg == "--quick") {
      opts.density = harness::SweepDensity::kQuick;
      opts.curated_only = false;
    } else if (arg == "--device=v100" || arg == "--device=nvidia") {
      amd = false;
    } else if (arg == "--device=mi250x" || arg == "--device=amd") {
      nvidia = false;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      opts.out_dir = arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--full|--quick] [--device=v100|mi250x] [--out-dir=DIR]\n"
                   "  default: curated fixed-budget sweep on both platforms\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (nvidia) opts.devices.push_back(sim::v100());
  if (amd) opts.devices.push_back(sim::mi250x());
  return opts;
}

inline void print_banner(const std::string& experiment, const std::string& paper_claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  if (!paper_claim.empty()) std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("\n");
}

inline void save_db(const harness::ResultDb& db, const Options& opts,
                    const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create %s: %s\n", opts.out_dir.c_str(),
                 ec.message().c_str());
    return;
  }
  const std::string path = opts.out_dir + "/" + name + ".csv";
  db.save(path);
  std::printf("[saved %zu records to %s]\n\n", db.size(), path.c_str());
}

inline std::string fmt(double v, const char* format = "%.3g") {
  return strings::format(format, v);
}

}  // namespace hpac::bench
