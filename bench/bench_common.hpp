#pragma once

// Shared plumbing for the figure/table reproduction benches: option
// parsing (--device, --full, --out-dir), consistent headers, and CSV
// persistence of each bench's result database.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "harness/params.hpp"
#include "harness/record.hpp"
#include "sim/device.hpp"

namespace hpac::bench {

struct Options {
  std::vector<sim::DeviceConfig> devices;  ///< platforms to evaluate
  harness::SweepDensity density = harness::SweepDensity::kQuick;
  bool curated_only = true;  ///< default fixed-budget sweep; --full widens
  std::string out_dir = "bench_results";
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      opts.density = harness::SweepDensity::kFull;
      opts.curated_only = false;
    } else if (arg == "--quick") {
      opts.density = harness::SweepDensity::kQuick;
      opts.curated_only = false;
    } else if (arg.rfind("--device=", 0) == 0) {
      // Any preset sim::device_by_name knows, repeatable for multi-device
      // runs: --device=v100 --device=a100. Aliases of an already-selected
      // preset (--device=v100 --device=nvidia) are deduplicated so a
      // device is never swept — and its CSV never overwritten — twice.
      try {
        sim::DeviceConfig device = sim::device_by_name(arg.substr(9));
        bool duplicate = false;
        for (const auto& existing : opts.devices) duplicate |= existing.name == device.name;
        if (!duplicate) opts.devices.push_back(std::move(device));
      } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      opts.out_dir = arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--full|--quick] [--device=v100|mi250x|a100]... [--out-dir=DIR]\n"
                   "  default: curated fixed-budget sweep on the paper's two platforms\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (opts.devices.empty()) {
    opts.devices.push_back(sim::v100());
    opts.devices.push_back(sim::mi250x());
  }
  return opts;
}

inline void print_banner(const std::string& experiment, const std::string& paper_claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  if (!paper_claim.empty()) std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("\n");
}

inline void save_db(const harness::ResultDb& db, const Options& opts,
                    const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create %s: %s\n", opts.out_dir.c_str(),
                 ec.message().c_str());
    return;
  }
  const std::string path = opts.out_dir + "/" + name + ".csv";
  db.save(path);
  std::printf("[saved %zu records to %s]\n\n", db.size(), path.c_str());
}

inline std::string fmt(double v, const char* format = "%.3g") {
  return strings::format(format, v);
}

}  // namespace hpac::bench
