// Figure 7 (a-f): LULESH under perforation, TAF and iACT on both
// platforms: speedup vs MAPE clouds.
//
// Paper claims reproduced here:
//  * perforation up to 1.64x (NVIDIA) / 1.67x (AMD) with < 7% MAPE;
//  * fini perforation induces less error than ini (the first — origin —
//    elements carry the blast and matter more);
//  * TAF up to 1.30x/1.45x with ~0.67% MAPE; iACT lower error but only
//    1.07x/1.15x.

#include <cstdio>

#include "apps/lulesh.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 7 — LULESH: perforation / TAF / iACT",
                      "perfo 1.64x@<7% (NV), 1.67x (AMD); fini < ini error; "
                      "TAF 1.30x/1.45x @ 0.67%; iACT 1.07x/1.15x @ 0.3%");

  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());
    apps::Lulesh app;
    Explorer explorer(app, device);

    // Perforation cloud (panels a/d): every perfo type x items per thread.
    std::vector<pragma::ApproxSpec> perfo =
        opts.curated_only ? curated_perfo_specs() : perfo_specs(opts.density);
    explorer.sweep(perfo, {1, 8, 64, 512});

    // TAF cloud (panels b/e) and iACT cloud (panels c/f).
    const auto levels = table2::hierarchies();
    std::vector<pragma::ApproxSpec> taf =
        opts.curated_only ? curated_taf_specs(levels) : taf_specs(opts.density);
    std::vector<pragma::ApproxSpec> iact = opts.curated_only
                                               ? curated_iact_specs(device.warp_size, levels)
                                               : iact_specs(opts.density, device.warp_size);
    explorer.sweep(taf, {4, 8, 32, 128, 512});
    explorer.sweep(iact, {8, 64});

    // Panel summaries: best per technique and the ini-vs-fini contrast.
    for (auto technique : {pragma::Technique::kPerforation, pragma::Technique::kTafMemo,
                           pragma::Technique::kIactMemo}) {
      auto records = explorer.db().where(
          [&](const RunRecord& r) { return r.technique == technique; });
      auto best10 = best_under_error(records, 10.0);
      if (best10) {
        std::printf("  %-6s best <10%% error: %5.2fx @ %7.4f%%  (%s, ipt=%llu)\n",
                    pragma::technique_name(technique).c_str(), best10->speedup,
                    best10->error_percent, best10->spec_text.c_str(),
                    static_cast<unsigned long long>(best10->items_per_thread));
      } else {
        std::printf("  %-6s no configuration under 10%% error\n",
                    pragma::technique_name(technique).c_str());
      }
    }

    // ini vs fini: mean error at matched skip fractions.
    for (const char* kind : {"ini", "fini"}) {
      auto records = explorer.db().where([&](const RunRecord& r) {
        return r.perfo_kind == kind && r.feasible && r.items_per_thread == 1;
      });
      double err_sum = 0;
      for (const auto& r : records) err_sum += r.error_percent;
      std::printf("  perfo %-4s mean MAPE over %zu configs: %.3f%%\n", kind, records.size(),
                  records.empty() ? 0.0 : err_sum / static_cast<double>(records.size()));
    }

    // The scatter itself, decimated like the paper's plots.
    TextTable cloud({"technique", "spec", "ipt", "speedup", "MAPE %"});
    for (const auto& r : decimate_for_plot(explorer.db().records(), 10, 0.10)) {
      cloud.add_row({pragma::technique_name(r.technique), r.spec_text,
                     std::to_string(r.items_per_thread), strings::format("%.3f", r.speedup),
                     strings::format("%.4f", r.error_percent)});
    }
    std::printf("\ndecimated speedup/MAPE cloud (fastest+slowest 10%% per error bin):\n%s\n",
                cloud.render().c_str());
    bench::save_db(explorer.db(), opts, "fig07_lulesh_" + device.name);
  }
  return 0;
}
