// Micro-benchmarks (google-benchmark) of the hpac-offload runtime
// primitives: TAF state machine operations, iACT table probes and
// inserts, warp ballots, block tallies, clause parsing, the coalescing
// model and end-to-end region-executor throughput. These are host-side
// costs of the simulator/runtime, useful for keeping the harness fast;
// the modeled GPU costs live in RuntimeCosts.

#include <benchmark/benchmark.h>

#include <vector>

#include "approx/hierarchy.hpp"
#include "approx/iact.hpp"
#include "approx/region.hpp"
#include "approx/taf.hpp"
#include "pragma/parser.hpp"
#include "sim/memory_model.hpp"
#include "sim/warp.hpp"

using namespace hpac;

namespace {

void BM_TafRecord(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  pragma::TafParams params{h, 8, 0.5};
  std::vector<double> storage(approx::TafState::storage_doubles(h, 1));
  approx::TafState taf(params, 1, storage);
  double v[1] = {1.0};
  for (auto _ : state) {
    v[0] += 0.001;
    taf.record_accurate(v);
    benchmark::DoNotOptimize(taf.credits());
  }
}
BENCHMARK(BM_TafRecord)->Arg(1)->Arg(3)->Arg(5)->Arg(16);

void BM_TafPredict(benchmark::State& state) {
  pragma::TafParams params{3, 1 << 20, 100.0};
  std::vector<double> storage(approx::TafState::storage_doubles(3, 4));
  approx::TafState taf(params, 4, storage);
  double v[4] = {1, 2, 3, 4};
  taf.record_accurate(v);
  for (auto _ : state) {
    taf.predict(v);
    benchmark::DoNotOptimize(v[0]);
  }
}
BENCHMARK(BM_TafPredict);

void BM_IactFindNearest(benchmark::State& state) {
  const int tsize = static_cast<int>(state.range(0));
  const int dims = static_cast<int>(state.range(1));
  std::vector<double> storage(approx::IactTable::storage_doubles(tsize, dims, 1));
  approx::IactTable table(tsize, dims, 1, approx::Replacement::kRoundRobin, storage);
  std::vector<double> in(dims, 0.5), out(1, 1.0);
  for (int i = 0; i < tsize; ++i) {
    in[0] = i;
    table.insert(in, out);
  }
  for (auto _ : state) {
    auto match = table.find_nearest(in);
    benchmark::DoNotOptimize(match.distance);
  }
}
BENCHMARK(BM_IactFindNearest)->Args({1, 1})->Args({4, 4})->Args({8, 8})->Args({8, 16});

void BM_IactInsertRoundRobin(benchmark::State& state) {
  std::vector<double> storage(approx::IactTable::storage_doubles(8, 4, 2));
  approx::IactTable table(8, 4, 2, approx::Replacement::kRoundRobin, storage);
  std::vector<double> in(4, 0.5), out(2, 1.0);
  for (auto _ : state) {
    in[0] += 1.0;
    table.insert(in, out);
  }
}
BENCHMARK(BM_IactInsertRoundRobin);

void BM_IactInsertClock(benchmark::State& state) {
  std::vector<double> storage(approx::IactTable::storage_doubles(8, 4, 2));
  approx::IactTable table(8, 4, 2, approx::Replacement::kClock, storage);
  std::vector<double> in(4, 0.5), out(2, 1.0);
  for (auto _ : state) {
    in[0] += 1.0;
    table.insert(in, out);
  }
}
BENCHMARK(BM_IactInsertClock);

void BM_Ballot(benchmark::State& state) {
  std::array<bool, 64> wishes{};
  for (int i = 0; i < 64; i += 3) wishes[static_cast<std::size_t>(i)] = true;
  const sim::LaneMask active = sim::full_mask(64);
  for (auto _ : state) {
    auto mask = sim::ballot(wishes, active);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_Ballot);

void BM_BlockTally(benchmark::State& state) {
  for (auto _ : state) {
    approx::BlockTally tally;
    for (int w = 0; w < 8; ++w) tally.add(0x0F0F0F0Full, sim::full_mask(32));
    benchmark::DoNotOptimize(tally.majority());
  }
}
BENCHMARK(BM_BlockTally);

void BM_ParseApprox(benchmark::State& state) {
  for (auto _ : state) {
    auto spec =
        pragma::parse_approx("memo(in:2:0.5f:4) level(warp) in(input[i*5:5:N]) out(o[i])");
    benchmark::DoNotOptimize(spec.technique);
  }
}
BENCHMARK(BM_ParseApprox);

void BM_CoalesceUnitStride(benchmark::State& state) {
  sim::CoalescingModel model(sim::v100());
  const sim::LaneMask active = 0x5555555555555555ull;
  std::uint64_t first = 0;
  for (auto _ : state) {
    first += 32;
    auto tx = model.unit_stride_transactions(first, 8, active, 32);
    benchmark::DoNotOptimize(tx);
  }
}
BENCHMARK(BM_CoalesceUnitStride);

void BM_RegionExecutorThroughput(benchmark::State& state) {
  const std::uint64_t n = 1u << 14;
  std::vector<double> out(n);
  approx::RegionBinding binding;
  binding.out_dims = 1;
  binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
    o[0] = static_cast<double>(i) * 1e-6;
  };
  binding.accurate_cost = [](std::uint64_t) { return 100.0; };
  binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
  approx::RegionExecutor executor(sim::v100());
  pragma::ApproxSpec spec;
  spec.technique = pragma::Technique::kTafMemo;
  spec.taf = pragma::TafParams{3, 16, 0.5};
  spec.out_sections.push_back("out[i]");
  const sim::LaunchConfig launch = sim::launch_for_items_per_thread(n, 16, 128);
  for (auto _ : state) {
    auto report = executor.run(spec, binding, n, launch);
    benchmark::DoNotOptimize(report.stats.approx_items);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RegionExecutorThroughput);

}  // namespace

BENCHMARK_MAIN();
