// Figure 4 ablation: the three TAF algorithm designs on a parallel loop.
//
//  (b) CPU algorithm — threads execute contiguous chunks; TAF's spatial-
//      locality assumption holds and each thread's state machine sees
//      neighboring iterations.
//  (c) semantically-equivalent GPU port — adjacent GPU threads execute
//      adjacent iterations but must *serialize* on the previous thread's
//      TAF state to preserve the sliding-window order.
//  (d) hpac-offload grid-stride TAF — every thread runs a private state
//      machine over its grid-stride iterations; no inter-thread
//      dependencies, spatial locality relaxed.
//
// The bench measures modeled cycles and quality for each design on a
// smooth synthetic workload: (c) matches (b)'s approximation pattern but
// pays lane-serialization; (d) restores parallelism at a small accuracy
// cost — the paper's argument for relaxing the locality assumption.

#include <cmath>
#include <cstdio>
#include <vector>

#include "approx/region.hpp"
#include "approx/taf.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pragma/parser.hpp"
#include "sim/shared_memory.hpp"

using namespace hpac;

namespace {

constexpr std::uint64_t kN = 1u << 16;
constexpr double kRegionCost = 200.0;

double f(std::uint64_t i) { return 10.0 + std::sin(static_cast<double>(i) * 1e-3); }

struct DesignResult {
  double cycles = 0;
  double mape = 0;
  double approx_ratio = 0;
};

/// (b)/(c): TAF state follows iteration order. For the CPU design each of
/// `threads` workers owns a contiguous chunk and its own state; cycles are
/// the max chunk cost over workers. For the serialized GPU design the
/// *same* per-chunk traces execute on warps whose lanes must wait for each
/// other, so a warp-step costs the sum of its lanes' path costs.
DesignResult ordered_taf(const pragma::TafParams& params, int threads, bool serialized_gpu,
                         int warp_size, const std::vector<double>& exact) {
  DesignResult result;
  std::vector<double> out(kN, 0.0);
  std::uint64_t approx_count = 0;
  const std::uint64_t chunk = (kN + threads - 1) / static_cast<std::uint64_t>(threads);
  double max_worker_cycles = 0;
  double serialized_cycles = 0;
  for (int t = 0; t < threads; ++t) {
    std::vector<double> storage(approx::TafState::storage_doubles(params.history_size, 1));
    approx::TafState state(params, 1, storage);
    double worker_cycles = 0;
    const std::uint64_t begin = static_cast<std::uint64_t>(t) * chunk;
    const std::uint64_t end = std::min(kN, begin + chunk);
    for (std::uint64_t i = begin; i < end; ++i) {
      double value[1];
      if (state.should_approximate()) {
        state.predict(value);
        worker_cycles += 4.0;
        ++approx_count;
      } else {
        value[0] = f(i);
        state.record_accurate(value);
        worker_cycles += kRegionCost;
      }
      out[i] = value[0];
    }
    max_worker_cycles = std::max(max_worker_cycles, worker_cycles);
    serialized_cycles += worker_cycles;  // lanes of a warp serialize
  }
  // CPU: workers run in parallel. Serialized GPU: within each warp, lanes
  // chain; warps run in parallel, so divide the total by the warp count.
  if (serialized_gpu) {
    const double warps = static_cast<double>(threads) / warp_size;
    result.cycles = serialized_cycles / std::max(1.0, warps);
  } else {
    result.cycles = max_worker_cycles;
  }
  result.mape = stats::mape_percent(exact, out);
  result.approx_ratio = static_cast<double>(approx_count) / static_cast<double>(kN);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 4 ablation — TAF algorithm designs",
                      "the serialized GPU port loses the parallelism TAF's locality "
                      "assumption demands; grid-stride TAF restores it");

  const pragma::TafParams params{2, 2, 0.5};
  std::vector<double> exact(kN);
  for (std::uint64_t i = 0; i < kN; ++i) exact[i] = f(i);

  const sim::DeviceConfig device = opts.devices.front();
  TextTable table({"design", "modeled cycles", "MAPE %", "% approximated"});

  // (b) CPU, 44 worker threads as on the paper's Power9 node.
  DesignResult cpu = ordered_taf(params, 44, false, device.warp_size, exact);
  table.add_row({"(b) CPU chunked", bench::fmt(cpu.cycles, "%.0f"),
                 bench::fmt(cpu.mape, "%.4f"), bench::fmt(100 * cpu.approx_ratio, "%.1f")});

  // (c) serialized GPU port: adjacent lanes own adjacent iterations and
  // chain on each other's state.
  DesignResult ser = ordered_taf(params, 4096, true, device.warp_size, exact);
  table.add_row({"(c) GPU serialized", bench::fmt(ser.cycles, "%.0f"),
                 bench::fmt(ser.mape, "%.4f"), bench::fmt(100 * ser.approx_ratio, "%.1f")});

  // (d) hpac-offload grid-stride TAF via the real executor.
  {
    std::vector<double> out(kN, 0.0);
    approx::RegionBinding binding;
    binding.out_dims = 1;
    binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> o) {
      o[0] = f(i);
    };
    binding.accurate_cost = [](std::uint64_t) { return kRegionCost; };
    binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };
    approx::RegionExecutor executor(device);
    pragma::ApproxSpec spec;
    spec.technique = pragma::Technique::kTafMemo;
    spec.taf = params;
    spec.out_sections.push_back("out[i]");
    const sim::LaunchConfig launch = sim::launch_for_items_per_thread(kN, 16, 128);
    auto report = executor.run(spec, binding, kN, launch);
    table.add_row({"(d) grid-stride (hpac-offload)",
                   bench::fmt(report.timing.critical_path_cycles, "%.0f"),
                   bench::fmt(stats::mape_percent(exact, out), "%.4f"),
                   bench::fmt(100 * report.stats.approx_ratio(), "%.1f")});
  }

  std::printf("%s\n", table.render().c_str());
  return 0;
}
