// Figure 10: Blackscholes on the AMD system (kernel time only — 99% of
// the end-to-end time is allocation + transfer). Panels (a)/(b): TAF
// speedup vs MAPE and iACT slowdown. Panel (c): distribution of output
// prices vs the RSD threshold at history 5 / prediction 512, showing the
// counter-intuitive threshold behaviour around T = 3.0.
//
// Paper claims reproduced here:
//  * TAF up to 2.26x @ 0.015% MAPE on AMD; best at high prediction size
//    and threshold;
//  * iACT slows the kernel down;
//  * RSD threshold interacts unintuitively with output quality (c).

#include <cstdio>

#include "apps/blackscholes.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 10 — Blackscholes (kernel time): TAF, iACT, RSD threshold",
                      "TAF 2.26x @ 0.015% on AMD, best at high pSize+threshold; iACT "
                      "slows down; T<3.0 activates with high error (panel c)");

  const auto levels = table2::hierarchies();
  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());
    apps::Blackscholes app;
    Explorer explorer(app, device);
    auto taf = opts.curated_only ? curated_taf_specs(levels) : taf_specs(opts.density);
    auto iact = opts.curated_only ? curated_iact_specs(device.warp_size, levels)
                                  : iact_specs(opts.density, device.warp_size);
    explorer.sweep(taf, {8, 64, 512});
    explorer.sweep(iact, {8, 64});

    auto best = best_under_error(
        explorer.db().where(
            [](const RunRecord& r) { return r.technique == pragma::Technique::kTafMemo; }),
        10.0);
    if (best) {
      std::printf("  TAF best <10%%: %.2fx @ %.4f%% (%s, ipt=%llu)\n", best->speedup,
                  best->error_percent, best->spec_text.c_str(),
                  static_cast<unsigned long long>(best->items_per_thread));
    }
    double iact_max = 0;
    for (const auto& r : explorer.db().records()) {
      if (r.technique == pragma::Technique::kIactMemo && r.feasible) {
        iact_max = std::max(iact_max, r.speedup);
      }
    }
    std::printf("  iACT max speedup: %.2fx (paper: < 1x)\n", iact_max);
    bench::save_db(explorer.db(), opts, "fig10ab_blackscholes_" + device.name);
  }

  // --- Panel (c): output price distribution vs RSD threshold ------------
  std::printf("panel (c): price distribution, TAF hSize 5 / pSize 512, vs threshold\n");
  const sim::DeviceConfig device = opts.devices.back();  // AMD when both are present
  apps::Blackscholes app;
  Explorer explorer(app, device);
  const RunOutput& exact = explorer.baseline();

  TextTable table({"threshold", "MAPE %", "mean price", "p5", "p50", "p95"});
  auto describe = [&](const std::string& label, const std::vector<double>& prices,
                      double mape) {
    table.add_row({label, strings::format("%.4f", mape),
                   bench::fmt(stats::mean(prices), "%.4f"),
                   bench::fmt(stats::percentile(prices, 5), "%.4f"),
                   bench::fmt(stats::percentile(prices, 50), "%.4f"),
                   bench::fmt(stats::percentile(prices, 95), "%.4f")});
  };
  describe("exact", exact.qoi, 0.0);
  for (double threshold : {0.5, 1.0, 2.0, 3.0, 5.0, 20.0}) {
    pragma::ApproxSpec spec;
    spec.technique = pragma::Technique::kTafMemo;
    spec.taf = pragma::TafParams{5, 512, threshold};
    spec.out_sections.push_back("price[i]");
    apps::Blackscholes fresh;
    // A stride that does *not* divide the input's tiling period, so each
    // thread walks across distinct options and the RSD threshold decides
    // how aggressively unrepresentative values are emitted (panel c).
    RunOutput approx = fresh.run(spec, 24, device);
    describe(strings::format("T=%g", threshold), approx.qoi,
             stats::mape_percent(exact.qoi, approx.qoi));
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
