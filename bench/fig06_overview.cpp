// Figure 6 (and Table 1): for every benchmark and both platforms, the
// highest speedup whose quality loss stays below 10%, per approximation
// technique, plus the error distribution of qualifying configurations.
//
// Paper claims reproduced here:
//  * TAF is typically the best technique under the error bound; iACT the
//    worst (insights 4 and 6).
//  * MiniFE is excluded: its error is always > 10% (Figure 6 caption).
//  * Headline: up to 6.9x speedup (Binomial Options, TAF), geomean 1.42x.
//
// Default: curated fixed-budget sweep (~minutes); --quick/--full run the
// strided/complete Table 2 grids.

#include <cstdio>
#include <map>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 6 — highest speedup with error < 10%",
                      "TAF typically best, iACT worst; MiniFE always exceeds 10% error; "
                      "up to 6.9x (BO TAF), geomean 1.42x");

  const std::vector<pragma::HierarchyLevel> levels = table2::hierarchies();
  const double kMaxError = 10.0;

  std::vector<double> best_speedups;  // for the geomean headline
  ResultDb cross_device;              // for the portability comparison
  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s (%d SMs, warp %d) ---\n", device.name.c_str(),
                device.num_sms, device.warp_size);
    TextTable table({"benchmark", "technique", "best speedup", "error %", "ipt", "spec"});
    ResultDb all;

    for (const std::string& name : apps::benchmark_names()) {
      auto app = apps::make_benchmark(name);
      Explorer explorer(*app, device);

      std::vector<pragma::ApproxSpec> taf, iact, perfo;
      if (opts.curated_only) {
        taf = curated_taf_specs(levels);
        iact = curated_iact_specs(device.warp_size, levels);
        perfo = curated_perfo_specs();
      } else {
        taf = taf_specs(opts.density);
        iact = iact_specs(opts.density, device.warp_size);
        perfo = perfo_specs(opts.density);
      }
      const std::vector<std::uint64_t> memo_ipt =
          opts.curated_only ? app->memo_items_axis() : items_per_thread_axis(opts.density);
      const std::vector<std::uint64_t> perfo_ipt{1, 8};

      explorer.sweep(taf, memo_ipt);
      explorer.sweep(iact, memo_ipt);
      explorer.sweep(perfo, perfo_ipt);

      for (const auto& technique :
           {pragma::Technique::kPerforation, pragma::Technique::kTafMemo,
            pragma::Technique::kIactMemo}) {
        auto records = explorer.db().where(
            [&](const RunRecord& r) { return r.technique == technique; });
        auto best = best_under_error(records, kMaxError);
        if (best) {
          table.add_row({name, pragma::technique_name(technique),
                         strings::format("%.2fx", best->speedup),
                         strings::format("%.3f", best->error_percent),
                         std::to_string(best->items_per_thread), best->spec_text});
          if (best->speedup > 0) best_speedups.push_back(best->speedup);
        } else {
          const bool any_feasible =
              !explorer.db()
                   .where([&](const RunRecord& r) {
                     return r.technique == technique && r.feasible;
                   })
                   .empty();
          table.add_row({name, pragma::technique_name(technique), "-", "-", "-",
                         any_feasible ? "excluded: error always >= 10%"
                                      : "not applicable"});
        }
      }
      for (auto& r : explorer.db().records()) all.add(r);
    }
    std::printf("%s\n", table.render().c_str());

    // Error distribution of qualifying configs (Figure 6, top panels).
    TextTable dist({"benchmark", "configs < 10%", "err min", "err median", "err max"});
    for (const std::string& name : apps::benchmark_names()) {
      auto errors = errors_under(
          all.where([&](const RunRecord& r) { return r.benchmark == name; }), kMaxError);
      if (errors.empty()) {
        dist.add_row({name, "0", "-", "-", "-"});
        continue;
      }
      dist.add_row({name, std::to_string(errors.size()),
                    bench::fmt(stats::percentile(errors, 0)),
                    bench::fmt(stats::percentile(errors, 50)),
                    bench::fmt(stats::percentile(errors, 100))});
    }
    std::printf("%s\n", dist.render().c_str());
    for (const auto& r : all.records()) cross_device.add(r);
    bench::save_db(all, opts, "fig06_" + device.name);
  }

  // Portability comparison: the same directives on every platform swept.
  if (opts.devices.size() > 1) {
    TextTable portability({"device", "geomean best (<10% err)", "feasible", "configs"});
    for (const auto& row : per_device_geomean_best(cross_device.records(), kMaxError)) {
      portability.add_row({row.device,
                           row.geomean_best > 0 ? strings::format("%.2fx", row.geomean_best)
                                                : "-",
                           std::to_string(row.feasible), std::to_string(row.total)});
    }
    std::printf("%s\n", portability.render().c_str());
  }

  if (!best_speedups.empty()) {
    std::printf("geomean of best per-benchmark-technique speedups (<10%% error): %.2fx "
                "(paper: 1.42x geomean, 6.9x max)\n\n",
                stats::geomean(best_speedups));
  }
  return 0;
}
