// perf_regression — perf-smoke bench of the region execution engine.
//
// Times a fixed Explorer quick sweep (curated TAF + iACT + perforation
// specs x two items-per-thread points) over a synthetic region whose own
// arithmetic is deliberately cheap, so the measurement isolates the
// executor: dispatch, mask computation, AC-state management, the
// coalescing model and the timing model. Application-math-heavy workloads
// (the fig benches) would mask engine regressions; this one exists so the
// perf trajectory of the engine itself is tracked from PR 3 onward.
//
// Three engine paths are timed over the identical workload:
//   scalar  — per-item std::function bindings through the compatibility
//             adapter (the only form the pre-refactor engine supported,
//             which makes this number comparable across that boundary);
//   batched — one call per warp via the batched binding API;
//   sharded — batched plus team-parallel execution on the host pool.
// The three result databases must be byte-identical; the bench fails
// loudly if they are not (the engine's bit-identity contract).
//
// Output: <out-dir>/BENCH_region_exec.json with wall seconds and
// region-invocations/second per path. Wire into CI as a non-gating step.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "approx/iact.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/simd.hpp"
#include "harness/explorer.hpp"
#include "harness/params.hpp"
#include "offload/device.hpp"
#include "offload/target.hpp"
#include "sim/device.hpp"
#include "sim/launch.hpp"
#include "sim/warp.hpp"

namespace {

using namespace hpac;

/// The synthetic region: out = a small polynomial of the item index, with
/// a long stable plateau (TAF-friendly), a short varying tail and inputs
/// that repeat with a small period (iACT-friendly).
double region_value(std::uint64_t i) {
  if (i % 97 < 60) return 42.0;
  return 1.0 + static_cast<double>(i % 7) * 0.25;
}

enum class BindingForm { kScalar, kBatched };

class EngineMicro : public harness::Benchmark {
 public:
  explicit EngineMicro(BindingForm form) : form_(form) {}

  std::string name() const override { return "engine_micro"; }
  std::uint64_t default_items_per_thread() const override { return 8; }
  std::vector<std::uint64_t> memo_items_axis() const override { return {8, 64}; }

  harness::RunOutput run(const pragma::ApproxSpec& spec, std::uint64_t items_per_thread,
                         const sim::DeviceConfig& device) override {
    const std::uint64_t n = kItems;
    offload::Device dev(device);
    approx::RegionExecutor executor(device);
    std::vector<double> out_values(n, 0.0);

    harness::RunOutput output;
    offload::MapScope map_in(dev, n * 2 * sizeof(double), offload::MapDir::kTo);
    offload::MapScope map_out(dev, n * sizeof(double), offload::MapDir::kFrom);

    approx::RegionBinding binding;
    binding.in_dims = 2;
    binding.out_dims = 1;
    binding.in_bytes = 2 * sizeof(double);
    binding.out_bytes = sizeof(double);
    binding.gather = [](std::uint64_t i, std::span<double> in) {
      in[0] = static_cast<double>(i % 13);
      in[1] = static_cast<double>((i / 13) % 7);
    };
    binding.accurate = [](std::uint64_t i, std::span<const double>, std::span<double> out) {
      out[0] = region_value(i);
    };
    binding.accurate_cost = [](std::uint64_t) { return 64.0; };
    binding.commit = [&out_values](std::uint64_t i, std::span<const double> out) {
      out_values[i] = out[0];
    };
    if (form_ == BindingForm::kBatched) {
      binding.gather_batch = [](std::uint64_t first, sim::LaneMask lanes,
                                std::span<double> in) {
        sim::for_each_lane(lanes, [&](int lane) {
          const std::uint64_t i = first + static_cast<std::uint64_t>(lane);
          in[static_cast<std::size_t>(lane) * 2 + 0] = static_cast<double>(i % 13);
          in[static_cast<std::size_t>(lane) * 2 + 1] = static_cast<double>((i / 13) % 7);
        });
      };
      binding.accurate_batch = [](std::uint64_t first, sim::LaneMask lanes,
                                  std::span<const double>, std::span<double> out) {
        sim::for_each_lane(lanes, [&](int lane) {
          out[static_cast<std::size_t>(lane)] =
              region_value(first + static_cast<std::uint64_t>(lane));
        });
      };
      binding.accurate_cost_batch = [](std::uint64_t, sim::LaneMask) { return 64.0; };
      binding.commit_batch = [&out_values](std::uint64_t first, sim::LaneMask lanes,
                                           std::span<const double> out) {
        sim::for_each_lane(lanes, [&](int lane) {
          out_values[first + static_cast<std::uint64_t>(lane)] =
              out[static_cast<std::size_t>(lane)];
        });
      };
      binding.independent_items = true;
    }

    const sim::LaunchConfig launch =
        sim::launch_for_items_per_thread(n, items_per_thread, threads_per_team());
    const approx::RegionReport report =
        offload::target_parallel_for(dev, executor, spec, binding, n, launch);
    output.stats = report.stats;
    output.timeline = dev.timeline();
    output.qoi = std::move(out_values);
    return output;
  }

  std::unique_ptr<harness::Benchmark> fork() const override {
    return std::make_unique<EngineMicro>(*this);
  }

  static constexpr std::uint64_t kItems = 1u << 16;

 private:
  BindingForm form_;
};

struct SweepResult {
  double wall_seconds = 0;
  std::uint64_t invocations = 0;
  std::string csv_text;
};

std::vector<pragma::ApproxSpec> curated_specs() {
  std::vector<pragma::ApproxSpec> specs =
      harness::curated_taf_specs(harness::table2::hierarchies());
  for (const auto& spec :
       harness::curated_iact_specs(sim::v100().warp_size, harness::table2::hierarchies())) {
    specs.push_back(spec);
  }
  for (const auto& spec : harness::curated_perfo_specs()) specs.push_back(spec);
  return specs;
}

/// One sweep under the process-wide default tuning already in effect.
SweepResult sweep_once(BindingForm form) {
  EngineMicro bench(form);
  harness::Explorer explorer(bench, sim::v100());
  const std::vector<pragma::ApproxSpec> specs = curated_specs();

  const auto start = std::chrono::steady_clock::now();
  explorer.sweep(specs, bench.memo_items_axis(), /*num_threads=*/1);
  const auto stop = std::chrono::steady_clock::now();

  SweepResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  for (const auto& record : explorer.db().records()) {
    if (record.feasible) result.invocations += EngineMicro::kItems;
  }
  std::ostringstream os;
  explorer.db().to_csv().write(os);
  result.csv_text = os.str();
  return result;
}

SweepResult run_sweep(BindingForm form, const approx::ExecTuning& tuning) {
  const approx::ExecTuning previous = approx::RegionExecutor::default_tuning();
  approx::RegionExecutor::set_default_tuning(tuning);
  SweepResult result = sweep_once(form);
  approx::RegionExecutor::set_default_tuning(previous);
  return result;
}

/// The nested Campaign x independent_items scenario: an outer two-way
/// (benchmark, device)-shard-style fan-out on the shared scheduler, each
/// shard running a full serial Explorer sweep whose region launches carry
/// `independent_items`. With `inner` pinned to one thread this reproduces
/// the pre-scheduler status quo (the worker-thread gate forced nested
/// launches serial); with the cooperative tuning the inner team shards
/// become stealable tasks that idle outer workers pick up. Wall-clock is
/// the whole outer join; both shards' CSVs must stay byte-identical to
/// the serial sweep.
SweepResult run_nested(const approx::ExecTuning& inner) {
  const approx::ExecTuning previous = approx::RegionExecutor::default_tuning();
  approx::RegionExecutor::set_default_tuning(inner);

  std::vector<SweepResult> shards(2);
  const auto start = std::chrono::steady_clock::now();
  hpac::Scheduler::shared().parallel_for(
      shards.size(), [&](std::size_t, std::size_t s) {
        shards[s] = sweep_once(BindingForm::kBatched);
      },
      /*max_participants=*/shards.size());
  const auto stop = std::chrono::steady_clock::now();

  approx::RegionExecutor::set_default_tuning(previous);

  SweepResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.invocations = shards[0].invocations + shards[1].invocations;
  result.csv_text = shards[0].csv_text == shards[1].csv_text
                        ? shards[0].csv_text
                        : std::string("<outer shards disagree>");
  return result;
}

/// The iACT table-scan scenario: raw `find_nearest` throughput at the
/// scalar dispatch level vs the widest one the host offers. The scan is
/// the per-invocation cost iACT pays on *every* region execution (paper
/// insight 4) and the target of the SIMD fast-path program; the curated
/// iACT sweeps use table_size 64-ish and small in_dims, so that is the
/// shape timed here. Results must be bit-identical across levels — the
/// bench fails loudly if not, same as the engine paths.
struct ScanBench {
  double off_seconds = 0;
  double best_seconds = 0;
  double speedup = 0;
  const char* best_level = "off";
  bool identical = true;
};

ScanBench bench_iact_scan() {
  constexpr int kTableSize = 64;
  constexpr int kInDims = 4;
  constexpr int kProbes = 1 << 19;
  const simd::Level previous = simd::active_level();

  // Pre-generate probes so RNG cost is outside the timed loop.
  Xoshiro256 rng(2023);
  std::vector<double> probes(static_cast<std::size_t>(kProbes) * kInDims);
  for (double& v : probes) v = rng.uniform(-4.0, 4.0);

  const auto run_at = [&](simd::Level level, std::vector<int>* indices) {
    simd::set_level(level);
    std::vector<double> storage(
        approx::IactTable::storage_doubles(kTableSize, kInDims, 1), 0.0);
    approx::IactTable table(kTableSize, kInDims, 1, approx::Replacement::kRoundRobin, storage);
    Xoshiro256 fill_rng(7);
    std::vector<double> in(kInDims), out{0.0};
    for (int f = 0; f < kTableSize; ++f) {
      for (double& v : in) v = fill_rng.uniform(-4.0, 4.0);
      table.insert(in, out);
    }
    indices->clear();
    indices->reserve(kProbes);
    const auto start = std::chrono::steady_clock::now();
    for (int p = 0; p < kProbes; ++p) {
      const std::span<const double> probe(probes.data() + static_cast<std::size_t>(p) * kInDims,
                                          kInDims);
      indices->push_back(table.find_nearest(probe).index);
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
  };

  ScanBench result;
  std::vector<int> off_indices, best_indices;
  result.off_seconds = run_at(simd::Level::kOff, &off_indices);
  const simd::Level best = simd::max_runtime_level();
  result.best_level = simd::level_name(best);
  if (best == simd::Level::kOff) {
    result.best_seconds = result.off_seconds;
    result.speedup = 1.0;
  } else {
    result.best_seconds = run_at(best, &best_indices);
    result.speedup = result.off_seconds / result.best_seconds;
    result.identical = off_indices == best_indices;
  }
  simd::set_level(previous);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  hpac::bench::Options opts = hpac::bench::parse_options(argc, argv);
  hpac::bench::print_banner(
      "perf_regression — region execution engine smoke",
      "engine overhead must keep shrinking; results must be bit-identical across paths");

  approx::ExecTuning serial;
  serial.max_threads = 1;
  approx::ExecTuning sharded;  // defaults: hardware concurrency, auto thresholds
  sharded.min_teams = 1;
  sharded.min_items = 0;
  sharded.min_teams_per_shard = 1;

  const SweepResult scalar = run_sweep(BindingForm::kScalar, serial);
  const SweepResult batched = run_sweep(BindingForm::kBatched, serial);
  const SweepResult parallel = run_sweep(BindingForm::kBatched, sharded);
  // Nested Campaign x independent_items: serialized inner = the pre-
  // scheduler status quo; cooperative inner = stealable team shards.
  const SweepResult nested_serialized = run_nested(serial);
  const SweepResult nested_cooperative = run_nested(sharded);

  const ScanBench scan = bench_iact_scan();

  const bool identical = scalar.csv_text == batched.csv_text &&
                         batched.csv_text == parallel.csv_text &&
                         parallel.csv_text == nested_serialized.csv_text &&
                         nested_serialized.csv_text == nested_cooperative.csv_text &&
                         scan.identical;
  std::printf("scalar              %.3f s  (%.3g inv/s)\n", scalar.wall_seconds,
              scalar.invocations / scalar.wall_seconds);
  std::printf("batched             %.3f s  (%.3g inv/s)\n", batched.wall_seconds,
              batched.invocations / batched.wall_seconds);
  std::printf("sharded             %.3f s  (%.3g inv/s)\n", parallel.wall_seconds,
              parallel.invocations / parallel.wall_seconds);
  std::printf("nested serialized   %.3f s  (%.3g inv/s)\n", nested_serialized.wall_seconds,
              nested_serialized.invocations / nested_serialized.wall_seconds);
  std::printf("nested cooperative  %.3f s  (%.3g inv/s)\n", nested_cooperative.wall_seconds,
              nested_cooperative.invocations / nested_cooperative.wall_seconds);
  std::printf("iact scan off       %.3f s\n", scan.off_seconds);
  std::printf("iact scan %-8s  %.3f s  (%.2fx, results %s)\n", scan.best_level,
              scan.best_seconds, scan.speedup,
              scan.identical ? "bit-identical" : "DIVERGED — SIMD BUG");
  std::printf("paths byte-identical: %s\n", identical ? "yes" : "NO — ENGINE BUG");

  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  const std::string path = opts.out_dir + "/BENCH_region_exec.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"region_exec\",\n"
                 "  \"items_per_config\": %llu,\n"
                 "  \"scalar\": {\"wall_seconds\": %.6f, \"items_per_sec\": %.6g},\n"
                 "  \"batched\": {\"wall_seconds\": %.6f, \"items_per_sec\": %.6g},\n"
                 "  \"sharded\": {\"wall_seconds\": %.6f, \"items_per_sec\": %.6g},\n"
                 "  \"nested_serialized\": {\"wall_seconds\": %.6f, \"items_per_sec\": %.6g},\n"
                 "  \"nested_cooperative\": {\"wall_seconds\": %.6f, \"items_per_sec\": %.6g},\n"
                 "  \"iact_find_nearest\": {\"off_seconds\": %.6f, \"best_seconds\": %.6f, "
                 "\"speedup\": %.4f, \"best_level\": \"%s\"},\n"
                 "  \"paths_byte_identical\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(EngineMicro::kItems), scalar.wall_seconds,
                 scalar.invocations / scalar.wall_seconds, batched.wall_seconds,
                 batched.invocations / batched.wall_seconds, parallel.wall_seconds,
                 parallel.invocations / parallel.wall_seconds,
                 nested_serialized.wall_seconds,
                 nested_serialized.invocations / nested_serialized.wall_seconds,
                 nested_cooperative.wall_seconds,
                 nested_cooperative.invocations / nested_cooperative.wall_seconds,
                 scan.off_seconds, scan.best_seconds, scan.speedup, scan.best_level,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("[wrote %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }
  return identical ? 0 : 1;
}
