// Table 2: the evaluation's parameter space. Prints each axis verbatim
// and the configuration counts, reproducing the paper's §4.3 claim of a
// 57,288-configuration design-space exploration (the exact total depends
// on per-benchmark applicability; we report the per-benchmark,
// per-platform grid size our harness enumerates).

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/params.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {
template <typename T>
std::string join(const std::vector<T>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ",";
    if constexpr (std::is_same_v<T, double>) {
      out += strings::format("%g", xs[i]);
    } else {
      out += std::to_string(xs[i]);
    }
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Table 2 — evaluation parameter space",
                      "exhaustive exploration over 57,288 configurations total");

  TextTable table({"axis", "values"});
  table.add_row({"TAF hSize", join(table2::taf_history_sizes())});
  table.add_row({"TAF pSize", join(table2::taf_prediction_sizes())});
  table.add_row({"TAF thresh", join(table2::memo_out_thresholds())});
  table.add_row({"iACT tPerWarp", join(table2::iact_tables_per_warp()) + " (64: AMD only)"});
  table.add_row({"iACT tSize", join(table2::iact_table_sizes())});
  table.add_row({"iACT thresh", join(table2::memo_in_thresholds())});
  table.add_row({"perfo skip (small/large)", join(table2::perfo_skips())});
  table.add_row({"perfo skipPercent (ini/fini)", join(table2::perfo_skip_percents())});
  table.add_row({"hierarchy", "thread,warp"});
  table.add_row({"items per thread", join(table2::items_per_thread())});
  std::printf("%s\n", table.render().c_str());

  for (const auto& device : opts.devices) {
    std::printf("full grid per benchmark on %-8s: %llu configurations\n",
                device.name.c_str(),
                static_cast<unsigned long long>(full_config_count(device.warp_size)));
  }
  std::printf(
      "both platforms, one benchmark: %llu configurations\n"
      "(x7 benchmarks with per-app applicability gives the paper's 57,288-scale space)\n\n",
      static_cast<unsigned long long>(full_config_count(32) + full_config_count(64)));
  return 0;
}
