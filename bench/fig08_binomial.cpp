// Figure 8: Binomial Options. Panels (a)/(b): TAF and iACT speedup vs
// MAPE with *block-level* decision-making (an entire block prices one
// option in the original code, so the paper only uses level(team)).
// Panel (c): the parallelism-vs-approximation trade-off — speedup vs
// items per thread, with the percent of approximated calculations, on
// both platforms.
//
// Paper claims reproduced here:
//  * TAF up to 6.90x @ 1.40% MAPE; iACT up to 5.64x @ 1.42% (NVIDIA);
//  * speedup rises with items per thread, peaks, then declines as the
//    device can no longer hide latency — and the AMD part, with more SMs,
//    declines at a smaller items-per-thread than NVIDIA.

#include <cstdio>

#include "apps/binomial.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"
#include "pragma/parser.hpp"

using namespace hpac;
using namespace hpac::harness;

namespace {

std::vector<pragma::ApproxSpec> block_level(std::vector<pragma::ApproxSpec> specs) {
  for (auto& spec : specs) spec.level = pragma::HierarchyLevel::kBlock;
  // Deduplicate (curated grids enumerate thread+warp which now collapse).
  std::vector<pragma::ApproxSpec> out;
  for (auto& spec : specs) {
    bool dup = false;
    for (const auto& have : out) dup = dup || have.to_string() == spec.to_string();
    if (!dup) out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 8 — Binomial Options: TAF/iACT (block level) + parallelism",
                      "TAF 6.90x @ 1.40%, iACT 5.64x @ 1.42% (NVIDIA); items-per-thread "
                      "hump with AMD declining earlier");

  const std::vector<pragma::HierarchyLevel> block{pragma::HierarchyLevel::kBlock};

  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());
    apps::BinomialOptions app;
    Explorer explorer(app, device);

    auto taf = block_level(opts.curated_only ? curated_taf_specs(block)
                                             : taf_specs(opts.density));
    auto iact = block_level(opts.curated_only ? curated_iact_specs(device.warp_size, block)
                                              : iact_specs(opts.density, device.warp_size));
    explorer.sweep(taf, {32, 128, 512});
    explorer.sweep(iact, {32, 128});

    for (auto technique : {pragma::Technique::kTafMemo, pragma::Technique::kIactMemo}) {
      auto records = explorer.db().where(
          [&](const RunRecord& r) { return r.technique == technique; });
      auto best = best_under_error(records, 10.0);
      if (best) {
        std::printf("  %-4s best <10%% error: %5.2fx @ %6.3f%% (%s, ipt=%llu)\n",
                    pragma::technique_name(technique).c_str(), best->speedup,
                    best->error_percent, best->spec_text.c_str(),
                    static_cast<unsigned long long>(best->items_per_thread));
      }
    }
    bench::save_db(explorer.db(), opts, "fig08ab_binomial_" + device.name);
  }

  // --- Panel (c): speedup vs items per thread --------------------------
  std::printf("panel (c): speedup and %% approximated vs items per thread\n");
  TextTable table({"items/thread", "platform", "speedup", "% approximated"});
  const pragma::ApproxSpec spec =
      pragma::parse_approx("memo(out:3:512:20) level(team) out(price[i])");
  for (const auto& device : opts.devices) {
    apps::BinomialOptions app;
    Explorer explorer(app, device);
    for (std::uint64_t ipt : {1, 4, 16, 64, 256, 1024, 4096, 16384}) {
      RunRecord r = explorer.run_config(spec, ipt);
      table.add_row({std::to_string(ipt), device.name, strings::format("%.3f", r.speedup),
                     strings::format("%.1f", 100.0 * r.approx_ratio)});
    }
    bench::save_db(explorer.db(), opts, "fig08c_binomial_" + device.name);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
