// Figure 11: LavaMD. Panels (a)/(b): TAF speedup vs MAPE and iACT
// slowdown on AMD. Panel (c): paired thread- vs warp-level decision
// speedups per RSD threshold (boxplot five-number summaries).
//
// Paper claims reproduced here:
//  * TAF up to 2.98x with ~0.133% error; better at high thresholds and
//    prediction sizes;
//  * iACT lowers error but slows the application (shared-table access +
//    euclidean distances cost more than the force computation saves);
//  * warp-level decision-making raises the speedup distribution by
//    eliminating approximation-induced control divergence (median up to
//    2.27x higher).

#include <cstdio>

#include "apps/lavamd.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 11 — LavaMD: TAF, iACT, thread vs warp hierarchy",
                      "TAF 2.98x @ 0.133% (AMD); iACT slows down; warp-level raises the "
                      "speedup distribution (median up to 2.27x)");

  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());
    apps::LavaMd app;
    Explorer explorer(app, device);

    // TAF across thresholds and both hierarchy levels (panels a, c).
    std::vector<pragma::ApproxSpec> taf;
    for (double thr : {0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0}) {
      for (int p : {2, 4, 16, 128}) {
        for (auto level : table2::hierarchies()) {
          pragma::ApproxSpec spec;
          spec.technique = pragma::Technique::kTafMemo;
          spec.taf = pragma::TafParams{3, p, thr};
          spec.level = level;
          spec.out_sections.push_back("force[i]");
          taf.push_back(spec);
        }
      }
    }
    explorer.sweep(taf, {2, 4, 8});
    auto iact = opts.curated_only ? curated_iact_specs(device.warp_size, table2::hierarchies())
                                  : iact_specs(opts.density, device.warp_size);
    explorer.sweep(iact, {2, 4});

    auto best = best_under_error(
        explorer.db().where(
            [](const RunRecord& r) { return r.technique == pragma::Technique::kTafMemo; }),
        10.0);
    if (best) {
      std::printf("  TAF best <10%%: %.2fx @ %.4f%% (%s, ipt=%llu)\n", best->speedup,
                  best->error_percent, best->spec_text.c_str(),
                  static_cast<unsigned long long>(best->items_per_thread));
    }
    double iact_max = 0;
    double iact_min_err = 1e300;
    for (const auto& r : explorer.db().records()) {
      if (r.technique == pragma::Technique::kIactMemo && r.feasible) {
        iact_max = std::max(iact_max, r.speedup);
        iact_min_err = std::min(iact_min_err, r.error_percent);
      }
    }
    std::printf("  iACT: max speedup %.2fx (paper < 1x), min error %.3g%%\n", iact_max,
                iact_min_err);

    // Panel (c): speedup distribution per (threshold, hierarchy).
    auto groups = group_box_stats(
        explorer.db().where(
            [](const RunRecord& r) { return r.technique == pragma::Technique::kTafMemo; }),
        [](const RunRecord& r) {
          return strings::format("T=%-4g %s", r.threshold,
                                 pragma::hierarchy_name(r.level).c_str());
        });
    TextTable boxes({"group", "n", "min", "q1", "median", "q3", "max"});
    for (const auto& g : groups) {
      boxes.add_row({g.key, std::to_string(g.count), bench::fmt(g.box.min),
                     bench::fmt(g.box.q1), bench::fmt(g.box.median), bench::fmt(g.box.q3),
                     bench::fmt(g.box.max)});
    }
    std::printf("\npanel (c) — TAF speedup distribution by threshold x hierarchy:\n%s\n",
                boxes.render().c_str());
    bench::save_db(explorer.db(), opts, "fig11_lavamd_" + device.name);
  }
  return 0;
}
