// Figure 12: K-Means. Panels (a)/(b): TAF and iACT speedup vs
// misclassification rate (MCR). Panel (c): time speedup vs convergence
// speedup — in K-Means the speedup comes primarily from converging in
// fewer iterations because memoized assignments herd observations into
// their previous clusters (paper: R^2 = 0.95).

#include <cstdio>

#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/analysis.hpp"
#include "harness/explorer.hpp"

using namespace hpac;
using namespace hpac::harness;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 12 — K-Means: TAF, iACT, convergence correlation",
                      "speedups up to ~4x from early convergence; time speedup vs "
                      "convergence speedup linear with R^2 = 0.95");

  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());
    apps::KMeans app;
    Explorer explorer(app, device);

    // TAF grid with the paper's K-Means history sizes (Figure 12a legend:
    // 2..16) and thresholds.
    std::vector<pragma::ApproxSpec> taf;
    for (int h : {2, 3, 5, 8, 16}) {
      for (double thr : {0.3, 0.9, 1.5, 5.0}) {
        pragma::ApproxSpec spec;
        spec.technique = pragma::Technique::kTafMemo;
        spec.taf = pragma::TafParams{h, 64, thr};
        spec.level = pragma::HierarchyLevel::kWarp;
        spec.out_sections.push_back("membership[i]");
        taf.push_back(spec);
      }
    }
    explorer.sweep(taf, {8, 32, 128, 256});

    std::vector<pragma::ApproxSpec> iact;
    for (int tsize : {1, 2, 4, 8}) {
      for (double thr : {0.1, 0.3, 0.5, 0.9}) {
        pragma::ApproxSpec spec;
        spec.technique = pragma::Technique::kIactMemo;
        spec.iact = pragma::IactParams{tsize, thr, 2};
        spec.in_sections.push_back("obs[i]");
        spec.out_sections.push_back("membership[i]");
        iact.push_back(spec);
      }
    }
    explorer.sweep(iact, {8, 64});

    for (auto technique : {pragma::Technique::kTafMemo, pragma::Technique::kIactMemo}) {
      auto records = explorer.db().where(
          [&](const RunRecord& r) { return r.technique == technique; });
      auto best = best_under_error(records, 10.0);
      double max_any = 0;
      for (const auto& r : records) {
        if (r.feasible) max_any = std::max(max_any, r.speedup);
      }
      std::printf("  %-4s max speedup %5.2fx; best <10%% MCR: %s\n",
                  pragma::technique_name(technique).c_str(), max_any,
                  best ? strings::format("%.2fx @ %.2f%% (%s)", best->speedup,
                                         best->error_percent, best->spec_text.c_str())
                             .c_str()
                       : "none");
    }

    // Panel (c): convergence-speedup regression.
    auto corr = convergence_correlation(explorer.db().where(
        [](const RunRecord& r) { return r.technique == pragma::Technique::kTafMemo; }));
    std::printf("  panel (c): time vs convergence speedup over %zu runs: "
                "slope %.3f, R^2 = %.3f (paper: 0.95)\n",
                corr.time_speedup.size(), corr.regression.slope, corr.regression.r2);

    TextTable sample({"conv speedup", "time speedup"});
    for (std::size_t i = 0; i < corr.time_speedup.size(); i += 8) {
      sample.add_row({strings::format("%.3f", corr.convergence_speedup[i]),
                      strings::format("%.3f", corr.time_speedup[i])});
    }
    std::printf("\nsampled (c) series:\n%s\n", sample.render().c_str());
    bench::save_db(explorer.db(), opts, "fig12_kmeans_" + device.name);
  }
  return 0;
}
