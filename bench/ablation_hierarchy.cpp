// Hierarchy ablation (§3.1.2 / insight 5): thread- vs warp- vs block-
// level decision-making on a synthetic region whose lanes disagree about
// stability — the divergence worst case. 60% of items are perfectly
// stable (constant output), 40% vary; under grid-stride mapping every
// warp mixes both kinds, so thread-level decisions split each warp across
// the accurate and approximate paths on every step.
//
// Expected shape: thread-level shows divergent region executions and the
// worst time; warp/block majority eliminates divergence (forcing the
// minority), trading a little accuracy for speed.

#include <cmath>
#include <cstdio>
#include <vector>

#include "approx/region.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pragma/spec.hpp"

using namespace hpac;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner("Hierarchy ablation — thread vs warp vs block decisions",
                      "hierarchical decision-making eliminates approximation-induced "
                      "control divergence (Figure 11c mechanism)");

  constexpr std::uint64_t n = 1u << 16;
  auto f = [](std::uint64_t i) {
    // 60% stable lanes, 40% oscillating lanes, interleaved by index.
    if (i % 5 < 3) return 42.0;
    return 40.0 + 4.0 * std::sin(static_cast<double>(i));
  };
  std::vector<double> exact(n);
  for (std::uint64_t i = 0; i < n; ++i) exact[i] = f(i);

  for (const auto& device : opts.devices) {
    std::printf("--- platform: %s ---\n", device.name.c_str());
    TextTable table(
        {"level", "cycles", "divergent warp-regions", "MAPE %", "% approx", "forced approx"});
    for (auto level : {pragma::HierarchyLevel::kThread, pragma::HierarchyLevel::kWarp,
                       pragma::HierarchyLevel::kBlock}) {
      std::vector<double> out(n, 0.0);
      approx::RegionBinding binding;
      binding.out_dims = 1;
      binding.accurate = [&f](std::uint64_t i, std::span<const double>, std::span<double> o) {
        o[0] = f(i);
      };
      binding.accurate_cost = [](std::uint64_t) { return 300.0; };
      binding.commit = [&out](std::uint64_t i, std::span<const double> o) { out[i] = o[0]; };

      pragma::ApproxSpec spec;
      spec.technique = pragma::Technique::kTafMemo;
      spec.taf = pragma::TafParams{3, 16, 0.05};
      spec.level = level;
      spec.out_sections.push_back("out[i]");

      approx::RegionExecutor executor(device);
      const sim::LaunchConfig launch = sim::launch_for_items_per_thread(n, 64, 128);
      auto report = executor.run(spec, binding, n, launch);
      table.add_row({pragma::hierarchy_name(level),
                     bench::fmt(report.timing.critical_path_cycles, "%.0f"),
                     std::to_string(report.timing.divergent_regions),
                     bench::fmt(stats::mape_percent(exact, out), "%.4f"),
                     bench::fmt(100 * report.stats.approx_ratio(), "%.1f"),
                     std::to_string(report.stats.forced_approx)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
