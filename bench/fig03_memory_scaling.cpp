// Figure 3: percent of an NVIDIA V100's 16 GB global memory needed to
// store *per-thread* iACT memoization tables (5 entries of 36 bytes each)
// as the thread count grows from 2^14 to 2^27 — the motivation for
// HPAC-Offload's shared-memory AC state (paper §3.1.1).
//
// Also prints the resident-thread-bounded footprint hpac-offload actually
// uses, demonstrating the >1000x reduction the design buys.

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/device.hpp"

using namespace hpac;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  bench::print_banner(
      "Figure 3 — per-thread memoization tables vs. V100 global memory",
      "AC tables fill the 16 GB device at 2^27 threads, far below the ~2^72 "
      "thread limit; per-thread state cannot scale");

  const sim::DeviceConfig dev = sim::v100();
  // The figure's assumption: a 5-entry table, 36 bytes per entry.
  const double table_bytes = 5.0 * 36.0;

  TextTable table({"threads (2^x)", "threads", "table bytes total", "% of 16 GB"});
  for (int exp = 14; exp <= 27; ++exp) {
    const double threads = static_cast<double>(1ull << exp);
    const double total = threads * table_bytes;
    const double percent = 100.0 * total / static_cast<double>(dev.global_mem_bytes);
    table.add_row({strings::format("%d", exp), strings::format("%.0f", threads),
                   strings::format("%.3e", total), strings::format("%.1f", percent)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("hpac-offload design (shared-memory AC state, resident threads only):\n");
  for (const auto& device : opts.devices) {
    const double resident = static_cast<double>(device.max_resident_threads());
    const double bytes = resident * table_bytes;
    std::printf(
        "  %-8s resident threads %8.0f -> %6.2f MB total AC state "
        "(vs %.0f GB for 2^27 per-thread tables)\n",
        device.name.c_str(), resident, bytes / (1 << 20),
        static_cast<double>(1ull << 27) * table_bytes / 1e9);
  }
  std::printf("\n");
  return 0;
}
